//! SASE-style NFA evaluation — the no-preprocessing baseline of Table 8.
//!
//! SASE [30, 34] compiles a sequential pattern into an NFA and runs it over
//! the event stream. For the paper's offline setting that means: every query
//! scans the *entire* log, advancing one automaton instance per trace. No
//! index, no build phase — and therefore the per-query cost grows linearly
//! with log size, which is the degradation Table 8 demonstrates on
//! `bpi_2017`/`max_10000`.
//!
//! Match semantics follow the paper's §2.1 definitions: under STNM the
//! automaton skips non-matching events and emits greedy non-overlapping
//! completions (the AAB-over-AAABAACB example yields exactly (1,2,4) and
//! (5,6,8)); under SC every window of consecutive events is tested.

use seqdet_log::{
    Attr, AttrEntry, Event, EventLog, Pattern, PatternElem, RichPattern, TraceId, Ts,
};

/// One pattern completion found by the scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NfaMatch {
    /// Trace the completion occurred in.
    pub trace: TraceId,
    /// Timestamps of the matched events.
    pub timestamps: Vec<Ts>,
}

/// The scan engine. Holds only a borrowed view of the log — there is, by
/// design, no preprocessing to pay for or benefit from.
pub struct SaseEngine<'a> {
    log: &'a EventLog,
}

impl<'a> SaseEngine<'a> {
    /// Wrap a log. O(1).
    pub fn new(log: &'a EventLog) -> Self {
        Self { log }
    }

    /// Skip-till-next-match evaluation: greedy non-overlapping runs of the
    /// automaton per trace.
    pub fn detect_stnm(&self, pattern: &Pattern) -> Vec<NfaMatch> {
        let acts = pattern.activities();
        let mut out = Vec::new();
        if acts.is_empty() {
            return out;
        }
        for trace in self.log.traces() {
            // NFA state: next pattern symbol to match + partial timestamps.
            let mut state = 0usize;
            let mut partial: Vec<Ts> = Vec::with_capacity(acts.len());
            for ev in trace.events() {
                if ev.activity == acts[state] {
                    partial.push(ev.ts);
                    state += 1;
                    if state == acts.len() {
                        out.push(NfaMatch { trace: trace.id(), timestamps: partial.clone() });
                        partial.clear();
                        state = 0;
                    }
                }
            }
        }
        out
    }

    /// Strict-contiguity evaluation: window scan per trace, reporting every
    /// (possibly overlapping) contiguous occurrence.
    pub fn detect_sc(&self, pattern: &Pattern) -> Vec<NfaMatch> {
        let acts = pattern.activities();
        let mut out = Vec::new();
        if acts.is_empty() {
            return out;
        }
        for trace in self.log.traces() {
            let events = trace.events();
            if events.len() < acts.len() {
                continue;
            }
            for w in events.windows(acts.len()) {
                if w.iter().map(|e| e.activity).eq(acts.iter().copied()) {
                    out.push(NfaMatch {
                        trace: trace.id(),
                        timestamps: w.iter().map(|e| e.ts).collect(),
                    });
                }
            }
        }
        out
    }

    /// Skip-till-next-match evaluation with a time window (CEP's `WITHIN`
    /// operator): a completion is valid only if its total span does not
    /// exceed `window`. A run whose span is already wider than the window
    /// restarts from scratch (greedy semantics, like [`Self::detect_stnm`]).
    pub fn detect_stnm_within(&self, pattern: &Pattern, window: Ts) -> Vec<NfaMatch> {
        let acts = pattern.activities();
        let mut out = Vec::new();
        if acts.is_empty() {
            return out;
        }
        for trace in self.log.traces() {
            let mut state = 0usize;
            let mut partial: Vec<Ts> = Vec::with_capacity(acts.len());
            for ev in trace.events() {
                if state > 0 && ev.ts - partial[0] > window {
                    // The open run can never complete within the window.
                    partial.clear();
                    state = 0;
                }
                if ev.activity == acts[state] {
                    partial.push(ev.ts);
                    state += 1;
                    if state == acts.len() {
                        out.push(NfaMatch { trace: trace.id(), timestamps: partial.clone() });
                        partial.clear();
                        state = 0;
                    }
                }
            }
        }
        out
    }

    /// SASE's actual evaluation model: a *run* is spawned at **every**
    /// occurrence of the pattern's first symbol, and each run then advances
    /// with skip-till-next-match semantics independently (NFA^b with match
    /// buffers). This returns possibly overlapping matches (one per
    /// initiating event that completes) and is the cost model behind the
    /// paper's Table-8 SASE timings: frequent first symbols spawn many
    /// simultaneous runs, each touching every subsequent event.
    pub fn detect_runs(&self, pattern: &Pattern) -> Vec<NfaMatch> {
        let acts = pattern.activities();
        let mut out = Vec::new();
        if acts.is_empty() {
            return out;
        }
        for trace in self.log.traces() {
            // Active runs: (next pattern index, partial timestamps).
            let mut runs: Vec<(usize, Vec<Ts>)> = Vec::new();
            for ev in trace.events() {
                // Advance every active run whose next symbol matches.
                let mut i = 0;
                while i < runs.len() {
                    if ev.activity == acts[runs[i].0] {
                        runs[i].0 += 1;
                        runs[i].1.push(ev.ts);
                        if runs[i].0 == acts.len() {
                            let (_, timestamps) = runs.swap_remove(i);
                            out.push(NfaMatch { trace: trace.id(), timestamps });
                            continue; // don't advance i — swapped element
                        }
                    }
                    i += 1;
                }
                // Spawn a new run at every first-symbol occurrence.
                if ev.activity == acts[0] {
                    runs.push((1, vec![ev.ts]));
                    if acts.len() == 1 {
                        let (_, timestamps) = runs.pop().expect("just pushed");
                        out.push(NfaMatch { trace: trace.id(), timestamps });
                    }
                }
            }
        }
        out
    }

    /// Distinct traces containing at least one STNM completion.
    pub fn traces_stnm(&self, pattern: &Pattern) -> Vec<TraceId> {
        let mut t: Vec<TraceId> = self.detect_stnm(pattern).into_iter().map(|m| m.trace).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Rich-pattern evaluation (Kleene `+`, negation `!`, `WITHIN`,
    /// attribute predicates) by full scan — the semantic oracle for the
    /// index-backed verifier. Greedy non-overlapping canonical matches per
    /// trace, anchor timestamps only; see `seqdet_log::richpat` for the
    /// exact semantics both implementations follow.
    pub fn detect_rich(&self, pattern: &RichPattern, within: Option<Ts>) -> Vec<NfaMatch> {
        let mut out = Vec::new();
        for trace in self.log.traces() {
            let scan =
                RichScan::new(pattern, trace.events(), self.log.trace_attrs(trace.id()), within);
            let mut start = 0usize;
            while let Some(anchors) = scan.first_match(start) {
                start = anchors.last().copied().unwrap_or(start) + 1;
                out.push(NfaMatch {
                    trace: trace.id(),
                    timestamps: anchors.iter().map(|&i| trace.events()[i].ts).collect(),
                });
            }
        }
        out
    }

    /// Rich-pattern any-match evaluation: per trace, the exact number of
    /// distinct valid anchor assignments (saturating) plus the first
    /// `limit` of them in lexicographic anchor order.
    pub fn any_match_rich(
        &self,
        pattern: &RichPattern,
        within: Option<Ts>,
        limit: usize,
    ) -> Vec<RichTraceMatches> {
        let mut out = Vec::new();
        for trace in self.log.traces() {
            let scan =
                RichScan::new(pattern, trace.events(), self.log.trace_attrs(trace.id()), within);
            let (count, examples) = scan.enumerate(limit);
            if count > 0 {
                out.push(RichTraceMatches { trace: trace.id(), count, examples });
            }
        }
        out
    }
}

/// Per-trace result of [`SaseEngine::any_match_rich`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RichTraceMatches {
    /// The trace.
    pub trace: TraceId,
    /// Number of distinct anchor assignments (saturating at `u64::MAX`).
    pub count: u64,
    /// The first few matches, lexicographic by anchor position.
    pub examples: Vec<Vec<Ts>>,
}

/// The oracle's event-by-event backtracking matcher over one trace. Kept
/// deliberately naive — zones and Kleene absorption are recomputed by
/// scanning on every probe — so it shares no structure with the candidate
/// lists + binary-search verifier in `seqdet-query`.
struct RichScan<'p, 'e> {
    elems: &'p [PatternElem],
    /// Indices into `elems` of the positive elements, in order.
    positives: Vec<usize>,
    events: &'e [Event],
    attrs: &'e [AttrEntry],
    within: Option<Ts>,
}

impl<'p, 'e> RichScan<'p, 'e> {
    fn new(
        pattern: &'p RichPattern,
        events: &'e [Event],
        attrs: &'e [AttrEntry],
        within: Option<Ts>,
    ) -> Self {
        let elems = pattern.elems();
        let positives =
            elems.iter().enumerate().filter(|(_, e)| !e.negated).map(|(i, _)| i).collect();
        Self { elems, positives, events, attrs, within }
    }

    fn attr_of(&self, ts: Ts, key: Attr) -> Option<i64> {
        self.attrs.iter().find(|&&(t, k, _)| t == ts && k == key).map(|&(_, _, v)| v)
    }

    fn matches_elem(&self, elem_idx: usize, ev_idx: usize) -> bool {
        let ev = &self.events[ev_idx];
        self.elems[elem_idx].event_matches(ev.activity, ev.ts, |a| self.attr_of(ev.ts, a))
    }

    /// Where the forbidden zone after positive `pidx` (anchored at `lo`,
    /// next anchor at `hi`) starts: the last event absorbed by a Kleene
    /// element, or the anchor itself otherwise.
    fn zone_start(&self, pidx: usize, lo: usize, hi: usize) -> usize {
        if !self.elems[pidx].kleene {
            return lo;
        }
        let mut last = lo;
        for i in lo + 1..hi {
            if self.matches_elem(pidx, i) {
                last = i;
            }
        }
        last
    }

    /// Are all negated elements between positive `k-1` and positive `k`
    /// satisfied for the anchor placement `(prev_anchor, next_anchor)`?
    fn gap_ok(&self, k: usize, prev_anchor: usize, next_anchor: usize) -> bool {
        let lo = self.zone_start(self.positives[k - 1], prev_anchor, next_anchor);
        for n in self.positives[k - 1] + 1..self.positives[k] {
            for i in lo + 1..next_anchor {
                if self.matches_elem(n, i) {
                    return false;
                }
            }
        }
        true
    }

    /// Lexicographically smallest anchor vector with `anchors[0] >= start`.
    fn first_match(&self, start: usize) -> Option<Vec<usize>> {
        let mut anchors = Vec::with_capacity(self.positives.len());
        self.search(0, start, &mut anchors).then_some(anchors)
    }

    fn search(&self, k: usize, from: usize, anchors: &mut Vec<usize>) -> bool {
        for j in from..self.events.len() {
            if !self.matches_elem(self.positives[k], j) {
                continue;
            }
            if k > 0 {
                if let Some(w) = self.within {
                    // Timestamps grow with j: every later candidate is
                    // outside the window too.
                    if self.events[j].ts - self.events[anchors[0]].ts > w {
                        return false;
                    }
                }
                // A violated zone does NOT rule out later anchors: a Kleene
                // absorber between them can move the zone start forward.
                if !self.gap_ok(k, anchors[k - 1], j) {
                    continue;
                }
            }
            anchors.push(j);
            if k + 1 == self.positives.len() {
                return true;
            }
            if self.search(k + 1, j + 1, anchors) {
                return true;
            }
            anchors.pop();
        }
        false
    }

    /// Count every valid anchor assignment (saturating) and collect the
    /// first `limit` as timestamp vectors.
    fn enumerate(&self, limit: usize) -> (u64, Vec<Vec<Ts>>) {
        let mut count = 0u64;
        let mut examples = Vec::new();
        let mut anchors = Vec::with_capacity(self.positives.len());
        self.enum_rec(0, 0, &mut anchors, &mut count, &mut examples, limit);
        (count, examples)
    }

    fn enum_rec(
        &self,
        k: usize,
        from: usize,
        anchors: &mut Vec<usize>,
        count: &mut u64,
        examples: &mut Vec<Vec<Ts>>,
        limit: usize,
    ) {
        for j in from..self.events.len() {
            if !self.matches_elem(self.positives[k], j) {
                continue;
            }
            if k > 0 {
                if let Some(w) = self.within {
                    if self.events[j].ts - self.events[anchors[0]].ts > w {
                        return;
                    }
                }
                if !self.gap_ok(k, anchors[k - 1], j) {
                    continue;
                }
            }
            anchors.push(j);
            if k + 1 == self.positives.len() {
                *count = count.saturating_add(1);
                if examples.len() < limit {
                    examples.push(anchors.iter().map(|&i| self.events[i].ts).collect());
                }
            } else {
                self.enum_rec(k + 1, j + 1, anchors, count, examples, limit);
            }
            anchors.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdet_log::EventLogBuilder;

    fn paper_log() -> EventLog {
        let mut b = EventLogBuilder::new();
        for (i, a) in "AAABAACB".chars().enumerate() {
            b.add("t", &a.to_string(), i as u64 + 1);
        }
        b.build()
    }

    fn pat(l: &EventLog, names: &[&str]) -> Pattern {
        Pattern::from_log(l, names).unwrap()
    }

    #[test]
    fn paper_example_stnm() {
        // §2.1: STNM detects AAB at (1,2,4) and (5,6,8).
        let l = paper_log();
        let e = SaseEngine::new(&l);
        let m = e.detect_stnm(&pat(&l, &["A", "A", "B"]));
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].timestamps, vec![1, 2, 4]);
        assert_eq!(m[1].timestamps, vec![5, 6, 8]);
    }

    #[test]
    fn paper_example_sc() {
        // §2.1: SC detects AAB starting at the 2nd position only.
        let l = paper_log();
        let e = SaseEngine::new(&l);
        let m = e.detect_sc(&pat(&l, &["A", "A", "B"]));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].timestamps, vec![2, 3, 4]);
    }

    #[test]
    fn sc_reports_overlapping_windows() {
        let mut b = EventLogBuilder::new();
        for (i, a) in "AAA".chars().enumerate() {
            b.add("t", &a.to_string(), i as u64 + 1);
        }
        let l = b.build();
        let e = SaseEngine::new(&l);
        assert_eq!(e.detect_sc(&pat(&l, &["A", "A"])).len(), 2);
    }

    #[test]
    fn stnm_across_traces() {
        let mut b = EventLogBuilder::new();
        b.add("t1", "A", 1).add("t1", "B", 2);
        b.add("t2", "B", 1).add("t2", "A", 2);
        b.add("t3", "A", 1).add("t3", "C", 2).add("t3", "B", 3);
        let l = b.build();
        let e = SaseEngine::new(&l);
        let p = pat(&l, &["A", "B"]);
        assert_eq!(e.detect_stnm(&p).len(), 2);
        assert_eq!(e.traces_stnm(&p).len(), 2);
    }

    #[test]
    fn windowed_stnm_restarts_stale_runs() {
        let mut b = EventLogBuilder::new();
        // A@1 … B@50 is out of a 10-window; A@60 B@62 is inside.
        b.add("t", "A", 1).add("t", "B", 50).add("t", "A", 60).add("t", "B", 62);
        let l = b.build();
        let e = SaseEngine::new(&l);
        let p = pat(&l, &["A", "B"]);
        assert_eq!(e.detect_stnm(&p).len(), 2);
        let m = e.detect_stnm_within(&p, 10);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].timestamps, vec![60, 62]);
        // Large windows admit everything.
        assert_eq!(e.detect_stnm_within(&p, 1000).len(), 2);
    }

    #[test]
    fn run_model_reports_one_match_per_initiating_event() {
        let mut b = EventLogBuilder::new();
        b.add("t", "A", 1).add("t", "A", 2).add("t", "B", 3);
        let l = b.build();
        let e = SaseEngine::new(&l);
        let p = pat(&l, &["A", "B"]);
        // Greedy non-overlapping: one match. Run model: two (from A@1, A@2).
        assert_eq!(e.detect_stnm(&p).len(), 1);
        let mut runs = e.detect_runs(&p);
        runs.sort_by_key(|m| m.timestamps.clone());
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].timestamps, vec![1, 3]);
        assert_eq!(runs[1].timestamps, vec![2, 3]);
    }

    #[test]
    fn run_model_on_paper_example() {
        let l = paper_log();
        let e = SaseEngine::new(&l);
        let m = e.detect_runs(&pat(&l, &["A", "A", "B"]));
        // Runs from A@1, A@2, A@3, A@5 complete; A@6's run never does.
        assert_eq!(m.len(), 4);
        assert!(m.iter().any(|x| x.timestamps == vec![1, 2, 4]));
        assert!(m.iter().any(|x| x.timestamps == vec![5, 6, 8]));
    }

    #[test]
    fn run_model_single_symbol_counts_occurrences() {
        let l = paper_log();
        let e = SaseEngine::new(&l);
        assert_eq!(e.detect_runs(&pat(&l, &["A"])).len(), 5);
    }

    fn rich(l: &EventLog, spec: &[(&str, bool, bool)]) -> RichPattern {
        // (name, negated, kleene)
        RichPattern::new(
            spec.iter()
                .map(|&(n, negated, kleene)| PatternElem {
                    activity: l.activity(n).unwrap(),
                    negated,
                    kleene,
                    preds: vec![],
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn rich_plain_pattern_matches_stnm() {
        let l = paper_log();
        let e = SaseEngine::new(&l);
        let p = rich(&l, &[("A", false, false), ("A", false, false), ("B", false, false)]);
        let m = e.detect_rich(&p, None);
        let stnm = e.detect_stnm(&pat(&l, &["A", "A", "B"]));
        assert_eq!(m, stnm);
    }

    #[test]
    fn rich_kleene_absorbs_between_anchors() {
        let mut b = EventLogBuilder::new();
        for (a, ts) in [("A", 1), ("B", 2), ("B", 3), ("B", 4), ("D", 5), ("B", 6), ("D", 7)] {
            b.add("t", a, ts);
        }
        let l = b.build();
        let e = SaseEngine::new(&l);
        // A B+ D: anchors are A@1, B@2 (first B), D@5; B@3, B@4 absorbed.
        let p = rich(&l, &[("A", false, false), ("B", false, true), ("D", false, false)]);
        let m = e.detect_rich(&p, None);
        assert_eq!(m.len(), 1, "B@6 D@7 must not rematch: no A remains");
        assert_eq!(m[0].timestamps, vec![1, 2, 5]);
    }

    #[test]
    fn rich_negation_zone_respects_kleene_absorption() {
        // The WITHIN x negation worked example from the docs: C@3 sits
        // between the B+ anchor (B@2) and the last absorbed B (B@4), so it
        // is OUTSIDE the forbidden zone (which starts after B@4).
        let mut b = EventLogBuilder::new();
        for (a, ts) in [("A", 1), ("B", 2), ("C", 3), ("B", 4), ("D", 5)] {
            b.add("t", a, ts);
        }
        let l = b.build();
        let e = SaseEngine::new(&l);
        let p = rich(
            &l,
            &[("A", false, false), ("B", false, true), ("C", true, false), ("D", false, false)],
        );
        let m = e.detect_rich(&p, None);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].timestamps, vec![1, 2, 5]);
        // Without Kleene on B, the zone starts right after the B anchor and
        // C@3 kills the match… but backtracking resurrects it with B@4 as
        // the anchor (C@3 is then before the anchor, not in the gap).
        let p2 = rich(
            &l,
            &[("A", false, false), ("B", false, false), ("C", true, false), ("D", false, false)],
        );
        let m2 = e.detect_rich(&p2, None);
        assert_eq!(m2.len(), 1);
        assert_eq!(m2[0].timestamps, vec![1, 4, 5]);
    }

    #[test]
    fn rich_negation_requires_backtracking() {
        // Greedy-earliest anchors A@1 -> B@4 and dies on C@2; the canonical
        // match anchors the later A@3 instead.
        let mut b = EventLogBuilder::new();
        for (a, ts) in [("A", 1), ("C", 2), ("A", 3), ("B", 4)] {
            b.add("t", a, ts);
        }
        let l = b.build();
        let e = SaseEngine::new(&l);
        let p = rich(&l, &[("A", false, false), ("C", true, false), ("B", false, false)]);
        let m = e.detect_rich(&p, None);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].timestamps, vec![3, 4]);
    }

    #[test]
    fn rich_within_bounds_anchor_span() {
        let mut b = EventLogBuilder::new();
        for (a, ts) in [("A", 1), ("A", 8), ("B", 10)] {
            b.add("t", a, ts);
        }
        let l = b.build();
        let e = SaseEngine::new(&l);
        let p = rich(&l, &[("A", false, false), ("B", false, false)]);
        assert_eq!(e.detect_rich(&p, None)[0].timestamps, vec![1, 10]);
        // Window 5 excludes the A@1 start; A@8 B@10 fits.
        let m = e.detect_rich(&p, Some(5));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].timestamps, vec![8, 10]);
        assert!(e.detect_rich(&p, Some(1)).is_empty());
    }

    #[test]
    fn rich_predicates_filter_events() {
        let mut b = EventLogBuilder::new();
        b.add("t", "A", 1).attr("amount", 50);
        b.add("t", "A", 2).attr("amount", 150);
        b.add("t", "B", 3);
        let l = b.build();
        let e = SaseEngine::new(&l);
        let amount = l.attr("amount").unwrap();
        let p = RichPattern::new(vec![
            PatternElem {
                activity: l.activity("A").unwrap(),
                negated: false,
                kleene: false,
                preds: vec![seqdet_log::Predicate {
                    key: seqdet_log::PredKey::Attr(amount),
                    op: seqdet_log::CmpOp::Gt,
                    value: 100,
                }],
            },
            PatternElem::plain(l.activity("B").unwrap()),
        ])
        .unwrap();
        let m = e.detect_rich(&p, None);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].timestamps, vec![2, 3]);
        // B carries no amount attr: a predicate on B never matches.
        let p2 = RichPattern::new(vec![
            PatternElem::plain(l.activity("A").unwrap()),
            PatternElem {
                activity: l.activity("B").unwrap(),
                negated: false,
                kleene: false,
                preds: vec![seqdet_log::Predicate {
                    key: seqdet_log::PredKey::Attr(amount),
                    op: seqdet_log::CmpOp::Ne,
                    value: 0,
                }],
            },
        ])
        .unwrap();
        assert!(e.detect_rich(&p2, None).is_empty());
    }

    #[test]
    fn rich_any_match_counts_all_assignments() {
        let mut b = EventLogBuilder::new();
        for (a, ts) in [("A", 1), ("A", 2), ("A", 3), ("B", 4)] {
            b.add("t", a, ts);
        }
        let l = b.build();
        let e = SaseEngine::new(&l);
        // A+ B: any of the three As can anchor (later As are absorbed).
        let p = rich(&l, &[("A", false, true), ("B", false, false)]);
        let r = e.any_match_rich(&p, None, 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].count, 3);
        assert_eq!(r[0].examples, vec![vec![1, 4], vec![2, 4]]);
        // Trailing Kleene absorbs nothing: A B+ == A B, 3 assignments.
        let p2 = rich(&l, &[("A", false, false), ("B", false, true)]);
        assert_eq!(e.any_match_rich(&p2, None, 0)[0].count, 3);
    }

    #[test]
    fn empty_pattern_and_short_traces() {
        let l = paper_log();
        let e = SaseEngine::new(&l);
        assert!(e.detect_stnm(&Pattern::new(vec![])).is_empty());
        assert!(e.detect_sc(&Pattern::new(vec![])).is_empty());
        // Pattern longer than the trace.
        let long = pat(&l, &["A", "A", "A", "A", "A", "A", "A", "A", "A"]);
        assert!(e.detect_sc(&long).is_empty());
    }
}
