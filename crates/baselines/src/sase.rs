//! SASE-style NFA evaluation — the no-preprocessing baseline of Table 8.
//!
//! SASE [30, 34] compiles a sequential pattern into an NFA and runs it over
//! the event stream. For the paper's offline setting that means: every query
//! scans the *entire* log, advancing one automaton instance per trace. No
//! index, no build phase — and therefore the per-query cost grows linearly
//! with log size, which is the degradation Table 8 demonstrates on
//! `bpi_2017`/`max_10000`.
//!
//! Match semantics follow the paper's §2.1 definitions: under STNM the
//! automaton skips non-matching events and emits greedy non-overlapping
//! completions (the AAB-over-AAABAACB example yields exactly (1,2,4) and
//! (5,6,8)); under SC every window of consecutive events is tested.

use seqdet_log::{EventLog, Pattern, TraceId, Ts};

/// One pattern completion found by the scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NfaMatch {
    /// Trace the completion occurred in.
    pub trace: TraceId,
    /// Timestamps of the matched events.
    pub timestamps: Vec<Ts>,
}

/// The scan engine. Holds only a borrowed view of the log — there is, by
/// design, no preprocessing to pay for or benefit from.
pub struct SaseEngine<'a> {
    log: &'a EventLog,
}

impl<'a> SaseEngine<'a> {
    /// Wrap a log. O(1).
    pub fn new(log: &'a EventLog) -> Self {
        Self { log }
    }

    /// Skip-till-next-match evaluation: greedy non-overlapping runs of the
    /// automaton per trace.
    pub fn detect_stnm(&self, pattern: &Pattern) -> Vec<NfaMatch> {
        let acts = pattern.activities();
        let mut out = Vec::new();
        if acts.is_empty() {
            return out;
        }
        for trace in self.log.traces() {
            // NFA state: next pattern symbol to match + partial timestamps.
            let mut state = 0usize;
            let mut partial: Vec<Ts> = Vec::with_capacity(acts.len());
            for ev in trace.events() {
                if ev.activity == acts[state] {
                    partial.push(ev.ts);
                    state += 1;
                    if state == acts.len() {
                        out.push(NfaMatch { trace: trace.id(), timestamps: partial.clone() });
                        partial.clear();
                        state = 0;
                    }
                }
            }
        }
        out
    }

    /// Strict-contiguity evaluation: window scan per trace, reporting every
    /// (possibly overlapping) contiguous occurrence.
    pub fn detect_sc(&self, pattern: &Pattern) -> Vec<NfaMatch> {
        let acts = pattern.activities();
        let mut out = Vec::new();
        if acts.is_empty() {
            return out;
        }
        for trace in self.log.traces() {
            let events = trace.events();
            if events.len() < acts.len() {
                continue;
            }
            for w in events.windows(acts.len()) {
                if w.iter().map(|e| e.activity).eq(acts.iter().copied()) {
                    out.push(NfaMatch {
                        trace: trace.id(),
                        timestamps: w.iter().map(|e| e.ts).collect(),
                    });
                }
            }
        }
        out
    }

    /// Skip-till-next-match evaluation with a time window (CEP's `WITHIN`
    /// operator): a completion is valid only if its total span does not
    /// exceed `window`. A run whose span is already wider than the window
    /// restarts from scratch (greedy semantics, like [`Self::detect_stnm`]).
    pub fn detect_stnm_within(&self, pattern: &Pattern, window: Ts) -> Vec<NfaMatch> {
        let acts = pattern.activities();
        let mut out = Vec::new();
        if acts.is_empty() {
            return out;
        }
        for trace in self.log.traces() {
            let mut state = 0usize;
            let mut partial: Vec<Ts> = Vec::with_capacity(acts.len());
            for ev in trace.events() {
                if state > 0 && ev.ts - partial[0] > window {
                    // The open run can never complete within the window.
                    partial.clear();
                    state = 0;
                }
                if ev.activity == acts[state] {
                    partial.push(ev.ts);
                    state += 1;
                    if state == acts.len() {
                        out.push(NfaMatch { trace: trace.id(), timestamps: partial.clone() });
                        partial.clear();
                        state = 0;
                    }
                }
            }
        }
        out
    }

    /// SASE's actual evaluation model: a *run* is spawned at **every**
    /// occurrence of the pattern's first symbol, and each run then advances
    /// with skip-till-next-match semantics independently (NFA^b with match
    /// buffers). This returns possibly overlapping matches (one per
    /// initiating event that completes) and is the cost model behind the
    /// paper's Table-8 SASE timings: frequent first symbols spawn many
    /// simultaneous runs, each touching every subsequent event.
    pub fn detect_runs(&self, pattern: &Pattern) -> Vec<NfaMatch> {
        let acts = pattern.activities();
        let mut out = Vec::new();
        if acts.is_empty() {
            return out;
        }
        for trace in self.log.traces() {
            // Active runs: (next pattern index, partial timestamps).
            let mut runs: Vec<(usize, Vec<Ts>)> = Vec::new();
            for ev in trace.events() {
                // Advance every active run whose next symbol matches.
                let mut i = 0;
                while i < runs.len() {
                    if ev.activity == acts[runs[i].0] {
                        runs[i].0 += 1;
                        runs[i].1.push(ev.ts);
                        if runs[i].0 == acts.len() {
                            let (_, timestamps) = runs.swap_remove(i);
                            out.push(NfaMatch { trace: trace.id(), timestamps });
                            continue; // don't advance i — swapped element
                        }
                    }
                    i += 1;
                }
                // Spawn a new run at every first-symbol occurrence.
                if ev.activity == acts[0] {
                    runs.push((1, vec![ev.ts]));
                    if acts.len() == 1 {
                        let (_, timestamps) = runs.pop().expect("just pushed");
                        out.push(NfaMatch { trace: trace.id(), timestamps });
                    }
                }
            }
        }
        out
    }

    /// Distinct traces containing at least one STNM completion.
    pub fn traces_stnm(&self, pattern: &Pattern) -> Vec<TraceId> {
        let mut t: Vec<TraceId> = self.detect_stnm(pattern).into_iter().map(|m| m.trace).collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdet_log::EventLogBuilder;

    fn paper_log() -> EventLog {
        let mut b = EventLogBuilder::new();
        for (i, a) in "AAABAACB".chars().enumerate() {
            b.add("t", &a.to_string(), i as u64 + 1);
        }
        b.build()
    }

    fn pat(l: &EventLog, names: &[&str]) -> Pattern {
        Pattern::from_log(l, names).unwrap()
    }

    #[test]
    fn paper_example_stnm() {
        // §2.1: STNM detects AAB at (1,2,4) and (5,6,8).
        let l = paper_log();
        let e = SaseEngine::new(&l);
        let m = e.detect_stnm(&pat(&l, &["A", "A", "B"]));
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].timestamps, vec![1, 2, 4]);
        assert_eq!(m[1].timestamps, vec![5, 6, 8]);
    }

    #[test]
    fn paper_example_sc() {
        // §2.1: SC detects AAB starting at the 2nd position only.
        let l = paper_log();
        let e = SaseEngine::new(&l);
        let m = e.detect_sc(&pat(&l, &["A", "A", "B"]));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].timestamps, vec![2, 3, 4]);
    }

    #[test]
    fn sc_reports_overlapping_windows() {
        let mut b = EventLogBuilder::new();
        for (i, a) in "AAA".chars().enumerate() {
            b.add("t", &a.to_string(), i as u64 + 1);
        }
        let l = b.build();
        let e = SaseEngine::new(&l);
        assert_eq!(e.detect_sc(&pat(&l, &["A", "A"])).len(), 2);
    }

    #[test]
    fn stnm_across_traces() {
        let mut b = EventLogBuilder::new();
        b.add("t1", "A", 1).add("t1", "B", 2);
        b.add("t2", "B", 1).add("t2", "A", 2);
        b.add("t3", "A", 1).add("t3", "C", 2).add("t3", "B", 3);
        let l = b.build();
        let e = SaseEngine::new(&l);
        let p = pat(&l, &["A", "B"]);
        assert_eq!(e.detect_stnm(&p).len(), 2);
        assert_eq!(e.traces_stnm(&p).len(), 2);
    }

    #[test]
    fn windowed_stnm_restarts_stale_runs() {
        let mut b = EventLogBuilder::new();
        // A@1 … B@50 is out of a 10-window; A@60 B@62 is inside.
        b.add("t", "A", 1).add("t", "B", 50).add("t", "A", 60).add("t", "B", 62);
        let l = b.build();
        let e = SaseEngine::new(&l);
        let p = pat(&l, &["A", "B"]);
        assert_eq!(e.detect_stnm(&p).len(), 2);
        let m = e.detect_stnm_within(&p, 10);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].timestamps, vec![60, 62]);
        // Large windows admit everything.
        assert_eq!(e.detect_stnm_within(&p, 1000).len(), 2);
    }

    #[test]
    fn run_model_reports_one_match_per_initiating_event() {
        let mut b = EventLogBuilder::new();
        b.add("t", "A", 1).add("t", "A", 2).add("t", "B", 3);
        let l = b.build();
        let e = SaseEngine::new(&l);
        let p = pat(&l, &["A", "B"]);
        // Greedy non-overlapping: one match. Run model: two (from A@1, A@2).
        assert_eq!(e.detect_stnm(&p).len(), 1);
        let mut runs = e.detect_runs(&p);
        runs.sort_by_key(|m| m.timestamps.clone());
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].timestamps, vec![1, 3]);
        assert_eq!(runs[1].timestamps, vec![2, 3]);
    }

    #[test]
    fn run_model_on_paper_example() {
        let l = paper_log();
        let e = SaseEngine::new(&l);
        let m = e.detect_runs(&pat(&l, &["A", "A", "B"]));
        // Runs from A@1, A@2, A@3, A@5 complete; A@6's run never does.
        assert_eq!(m.len(), 4);
        assert!(m.iter().any(|x| x.timestamps == vec![1, 2, 4]));
        assert!(m.iter().any(|x| x.timestamps == vec![5, 6, 8]));
    }

    #[test]
    fn run_model_single_symbol_counts_occurrences() {
        let l = paper_log();
        let e = SaseEngine::new(&l);
        assert_eq!(e.detect_runs(&pat(&l, &["A"])).len(), 5);
    }

    #[test]
    fn empty_pattern_and_short_traces() {
        let l = paper_log();
        let e = SaseEngine::new(&l);
        assert!(e.detect_stnm(&Pattern::new(vec![])).is_empty());
        assert!(e.detect_sc(&Pattern::new(vec![])).is_empty());
        // Pattern longer than the trace.
        let long = pat(&l, &["A", "A", "A", "A", "A", "A", "A", "A", "A"]);
        assert!(e.detect_sc(&long).is_empty());
    }
}
