//! # seqdet-baselines — the competitors of the paper's evaluation
//!
//! Self-contained implementations of the three systems the paper compares
//! against (§5), built from scratch so that every Table-6/7/8 experiment can
//! run on one machine:
//!
//! * [`subtree`] — the suffix-array–based *exact rooted subtree matching*
//!   technique of Luccio et al. (reference \[19\]), as used for business
//!   process continuation in \[27\]. Supports Strict Contiguity only;
//!   preprocessing *indexes all the subtrees* (all suffixes of all distinct
//!   trace variants) and queries binary-search that space (Table 1).
//! * [`textsearch`] — an Elasticsearch-style engine: per-activity document
//!   postings with in-document positions, conjunctive candidate retrieval,
//!   and per-document in-order span verification (the plan ES executes for
//!   `span_near`/in-order queries). STNM is native; SC requires full
//!   document post-verification, mirroring the paper's remark that ES
//!   supports SC only "with additional expensive post-processing".
//! * [`sase`] — a SASE-style NFA engine with **no preprocessing**: each
//!   query scans the full log, advancing an automaton per trace. This is the
//!   on-the-fly CEP evaluation whose degradation on large logs Table 8
//!   demonstrates.

pub mod sase;
pub mod subtree;
pub mod suffix;
pub mod textsearch;

pub use sase::{NfaMatch, RichTraceMatches, SaseEngine};
pub use subtree::SubtreeIndex;
pub use textsearch::TextSearchIndex;
