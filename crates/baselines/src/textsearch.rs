//! Elasticsearch-style baseline: per-activity document postings with
//! positions, conjunctive retrieval and in-order span verification.
//!
//! Elasticsearch answers the paper's STNM queries with a positional
//! term index: retrieve the documents (traces) containing every queried
//! term, then verify an in-order span per candidate. This module executes
//! exactly that plan:
//!
//! * [`TextSearchIndex::build`] tokenizes every trace as a document
//!   (per-document term→positions map, merged into global postings — the
//!   analysis pass is the part that makes ES index-building slower than the
//!   pair index on large logs, Table 6),
//! * [`TextSearchIndex::query_stnm`] intersects the per-term document lists
//!   (smallest first, binary-search probes) and greedily verifies an
//!   in-order occurrence via each candidate's position lists,
//! * [`TextSearchIndex::query_sc`] additionally requires adjacent
//!   positions; ES has no native "no gaps at all" operator over other
//!   terms, so the verification re-reads the full document — the "expensive
//!   post-processing" of §5.4.
//!
//! The shape this reproduces (Table 8): candidate retrieval touches one
//! posting list per *distinct term* and verification is cheap per document,
//! so cost grows slowly with pattern length — competitive for long
//! patterns, but for 2-element patterns it pays the full candidate
//! enumeration that the pair index answers with a single row read.

use seqdet_log::{Activity, EventLog, Pattern, TraceId, Ts};
use std::collections::HashMap;

/// One document's entry in a term's posting list.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DocPosting {
    doc: TraceId,
    /// Ordinal positions (0-based) of the term within the document.
    positions: Vec<u32>,
}

/// Documents per in-memory segment before a flush (Lucene-style buffering).
const SEGMENT_DOCS: usize = 512;
/// Segments per tier before a background merge rewrites them into one.
const MERGE_FACTOR: usize = 8;

/// One flushed segment: term → doc postings (docs ascending).
struct Segment {
    postings: HashMap<Activity, Vec<DocPosting>>,
    docs: usize,
}

/// The positional inverted index over traces-as-documents.
pub struct TextSearchIndex {
    postings: HashMap<Activity, Vec<DocPosting>>,
    /// The stored documents (needed for SC post-verification and to map
    /// ordinals back to timestamps — ES keeps `_source` for the same
    /// reason).
    docs: Vec<Vec<(Activity, Ts)>>,
}

/// Serialize one document the way a client would submit it to ES.
fn encode_source(events: &[(String, Ts)]) -> String {
    let mut s = String::with_capacity(events.len() * 24);
    s.push('[');
    for (i, (name, ts)) in events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"activity\":\"");
        for c in name.chars() {
            match c {
                '"' => s.push_str("\\\""),
                '\\' => s.push_str("\\\\"),
                _ => s.push(c),
            }
        }
        s.push_str("\",\"ts\":");
        s.push_str(&ts.to_string());
        s.push('}');
    }
    s.push(']');
    s
}

/// Parse the submitted source back into events — the analysis pass every
/// real document store performs on ingest.
fn parse_source(source: &str) -> Vec<(String, Ts)> {
    let mut out = Vec::new();
    let mut rest = source;
    while let Some(start) = rest.find("{\"activity\":\"") {
        rest = &rest[start + 13..];
        let mut name = String::new();
        let mut chars = rest.char_indices();
        let mut end = 0;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, esc)) = chars.next() {
                        name.push(esc);
                    }
                }
                '"' => {
                    end = i;
                    break;
                }
                _ => name.push(c),
            }
        }
        rest = &rest[end..];
        let ts = rest
            .find("\"ts\":")
            .map(|p| {
                let digits: String =
                    rest[p + 5..].chars().take_while(char::is_ascii_digit).collect();
                digits.parse().unwrap_or(0)
            })
            .unwrap_or(0);
        out.push((name, ts));
    }
    out
}

/// Merge a run of segments into one (the background-merge rewrite).
fn merge_segments(segments: Vec<Segment>) -> Segment {
    let mut postings: HashMap<Activity, Vec<DocPosting>> = HashMap::new();
    let mut docs = 0;
    for seg in segments {
        docs += seg.docs;
        for (term, mut list) in seg.postings {
            postings.entry(term).or_default().append(&mut list);
        }
    }
    for list in postings.values_mut() {
        list.sort_by_key(|p| p.doc);
    }
    Segment { postings, docs }
}

/// A matched document with the matched events' timestamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocMatch {
    /// The matching trace.
    pub trace: TraceId,
    /// Timestamps of the first (leftmost greedy) occurrence.
    pub timestamps: Vec<Ts>,
}

impl TextSearchIndex {
    /// Index `log`, one document per trace, through the full document
    /// pipeline a search engine runs: client-side `_source` serialization,
    /// ingest-side re-parsing and analysis, segment buffering, and tiered
    /// background merges (`MERGE_FACTOR` segments per tier are rewritten
    /// into one). This is what makes ES index-building heavier than the
    /// pair index per event — the effect Table 6 measures.
    pub fn build(log: &EventLog) -> Self {
        let mut docs = Vec::with_capacity(log.num_traces());
        // Tiered segments: tiers[i] holds merged segments of level i.
        let mut tiers: Vec<Vec<Segment>> = Vec::new();
        let mut buffer: HashMap<Activity, Vec<DocPosting>> = HashMap::new();
        let mut buffered_docs = 0usize;

        let flush = |buffer: &mut HashMap<Activity, Vec<DocPosting>>,
                     buffered_docs: &mut usize,
                     tiers: &mut Vec<Vec<Segment>>| {
            if *buffered_docs == 0 {
                return;
            }
            let seg = Segment { postings: std::mem::take(buffer), docs: *buffered_docs };
            *buffered_docs = 0;
            if tiers.is_empty() {
                tiers.push(Vec::new());
            }
            tiers[0].push(seg);
            // Cascade merges up the tiers.
            let mut level = 0;
            while tiers[level].len() >= MERGE_FACTOR {
                let run = std::mem::take(&mut tiers[level]);
                let merged = merge_segments(run);
                if tiers.len() == level + 1 {
                    tiers.push(Vec::new());
                }
                tiers[level + 1].push(merged);
                level += 1;
            }
        };

        for trace in log.traces() {
            // Client side: serialize the document.
            let source_events: Vec<(String, Ts)> = trace
                .events()
                .iter()
                .map(|e| (log.activity_name(e.activity).unwrap_or("?").to_owned(), e.ts))
                .collect();
            let source = encode_source(&source_events);
            // Ingest side: re-parse and analyze.
            let parsed = parse_source(&source);
            let mut per_doc: HashMap<Activity, Vec<u32>> = HashMap::new();
            let mut doc = Vec::with_capacity(parsed.len());
            for (pos, (name, ts)) in parsed.iter().enumerate() {
                let term = log.activities().get(name).expect("term from this log");
                per_doc.entry(term).or_default().push(pos as u32);
                doc.push((term, *ts));
            }
            for (term, positions) in per_doc {
                buffer.entry(term).or_default().push(DocPosting { doc: trace.id(), positions });
            }
            docs.push(doc);
            buffered_docs += 1;
            if buffered_docs >= SEGMENT_DOCS {
                flush(&mut buffer, &mut buffered_docs, &mut tiers);
            }
        }
        flush(&mut buffer, &mut buffered_docs, &mut tiers);

        // Final force-merge into one searchable index.
        let all: Vec<Segment> = tiers.into_iter().flatten().collect();
        let merged = merge_segments(all);
        Self { postings: merged.postings, docs }
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Candidate documents: contained in every queried term's posting list.
    fn candidates(&self, pattern: &Pattern) -> Vec<TraceId> {
        let mut terms: Vec<Activity> = pattern.activities().to_vec();
        terms.sort_unstable();
        terms.dedup();
        let mut lists: Vec<&Vec<DocPosting>> = Vec::with_capacity(terms.len());
        for t in &terms {
            match self.postings.get(t) {
                Some(l) => lists.push(l),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|l| l.len());
        let Some((smallest, rest)) = lists.split_first() else { return Vec::new() };
        smallest
            .iter()
            .map(|p| p.doc)
            .filter(|doc| rest.iter().all(|l| l.binary_search_by_key(doc, |p| p.doc).is_ok()))
            .collect()
    }

    /// Greedy in-order span verification inside one document, using the
    /// term position lists: for each pattern element, the first position
    /// strictly after the previous match.
    fn verify_stnm(&self, doc: TraceId, pattern: &Pattern) -> Option<Vec<Ts>> {
        let mut out = Vec::with_capacity(pattern.len());
        let mut after: i64 = -1;
        for a in pattern.activities() {
            let list = self.postings.get(a)?;
            let entry = &list[list.binary_search_by_key(&doc, |p| p.doc).ok()?];
            let idx = entry.positions.partition_point(|&p| (p as i64) <= after);
            let pos = *entry.positions.get(idx)?;
            after = pos as i64;
            out.push(self.docs[doc.index()][pos as usize].1);
        }
        Some(out)
    }

    /// STNM query: all documents embedding `pattern` in order, with the
    /// leftmost embedding's timestamps.
    pub fn query_stnm(&self, pattern: &Pattern) -> Vec<DocMatch> {
        if pattern.is_empty() {
            return Vec::new();
        }
        self.candidates(pattern)
            .into_iter()
            .filter_map(|doc| {
                self.verify_stnm(doc, pattern).map(|timestamps| DocMatch { trace: doc, timestamps })
            })
            .collect()
    }

    /// SC query: documents containing `pattern` as a contiguous run. The
    /// expensive post-processing pass: every candidate document is re-read
    /// and window-scanned.
    pub fn query_sc(&self, pattern: &Pattern) -> Vec<DocMatch> {
        if pattern.is_empty() {
            return Vec::new();
        }
        let needle = pattern.activities();
        self.candidates(pattern)
            .into_iter()
            .filter_map(|doc| {
                let events = &self.docs[doc.index()];
                events
                    .windows(needle.len())
                    .find(|w| w.iter().map(|&(a, _)| a).eq(needle.iter().copied()))
                    .map(|w| DocMatch {
                        trace: doc,
                        timestamps: w.iter().map(|&(_, ts)| ts).collect(),
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdet_log::EventLogBuilder;

    fn log() -> EventLog {
        let mut b = EventLogBuilder::new();
        // t1: A X B ; t2: B A ; t3: A B
        b.add("t1", "A", 10).add("t1", "X", 20).add("t1", "B", 30);
        b.add("t2", "B", 1).add("t2", "A", 2);
        b.add("t3", "A", 5).add("t3", "B", 6);
        b.build()
    }

    fn pat(l: &EventLog, names: &[&str]) -> Pattern {
        Pattern::from_log(l, names).unwrap()
    }

    #[test]
    fn build_counts() {
        let l = log();
        let ix = TextSearchIndex::build(&l);
        assert_eq!(ix.num_docs(), 3);
        assert_eq!(ix.num_terms(), 3);
    }

    #[test]
    fn stnm_query_embeds_in_order() {
        let l = log();
        let ix = TextSearchIndex::build(&l);
        let mut m = ix.query_stnm(&pat(&l, &["A", "B"]));
        m.sort_by_key(|d| d.trace);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].timestamps, vec![10, 30]); // skips X
        assert_eq!(m[1].timestamps, vec![5, 6]);
    }

    #[test]
    fn sc_query_requires_adjacency() {
        let l = log();
        let ix = TextSearchIndex::build(&l);
        let m = ix.query_sc(&pat(&l, &["A", "B"]));
        assert_eq!(m.len(), 1); // only t3: in t1 X intervenes
        assert_eq!(m[0].timestamps, vec![5, 6]);
    }

    #[test]
    fn repeated_terms_use_distinct_positions() {
        let mut b = EventLogBuilder::new();
        b.add("t", "A", 1).add("t", "A", 2).add("t", "B", 3);
        let l = b.build();
        let ix = TextSearchIndex::build(&l);
        let m = ix.query_stnm(&pat(&l, &["A", "A", "B"]));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].timestamps, vec![1, 2, 3]);
        // But A A A cannot match (only two As).
        assert!(ix.query_stnm(&pat(&l, &["A", "A", "A"])).is_empty());
    }

    #[test]
    fn missing_term_short_circuits() {
        let l = log();
        let ix = TextSearchIndex::build(&l);
        let p = Pattern::new(vec![Activity(999)]);
        assert!(ix.query_stnm(&p).is_empty());
        assert!(ix.query_sc(&p).is_empty());
        assert!(ix.query_stnm(&Pattern::new(vec![])).is_empty());
    }

    #[test]
    fn source_roundtrip_with_escapes() {
        let events = vec![
            ("plain".to_owned(), 5u64),
            ("with \"quotes\"".to_owned(), 6),
            ("back\\slash".to_owned(), 7),
        ];
        let encoded = encode_source(&events);
        assert_eq!(parse_source(&encoded), events);
        assert_eq!(parse_source("[]"), vec![]);
    }

    #[test]
    fn segment_flushing_preserves_results() {
        // More documents than one segment holds; postings must be complete
        // and doc-sorted after the tiered merges.
        let mut b = EventLogBuilder::new();
        for t in 0..(SEGMENT_DOCS * 2 + 37) {
            let name = format!("t{t}");
            b.add(&name, "A", 1).add(&name, if t % 2 == 0 { "B" } else { "C" }, 2);
        }
        let l = b.build();
        let ix = TextSearchIndex::build(&l);
        assert_eq!(ix.num_docs(), SEGMENT_DOCS * 2 + 37);
        let m = ix.query_stnm(&pat(&l, &["A", "B"]));
        assert_eq!(m.len(), (SEGMENT_DOCS * 2 + 37).div_ceil(2));
        // Posting lists are sorted by doc (binary-search probes rely on it).
        for list in ix.postings.values() {
            assert!(list.windows(2).all(|w| w[0].doc < w[1].doc));
        }
    }

    #[test]
    fn candidates_are_conjunctive() {
        let l = log();
        let ix = TextSearchIndex::build(&l);
        // X only occurs in t1.
        let m = ix.query_stnm(&pat(&l, &["A", "X"]));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].trace, l.trace_by_name("t1").unwrap().id());
    }
}
