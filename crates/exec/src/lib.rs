//! # seqdet-exec — per-trace parallel execution
//!
//! The paper's pre-processing component is "implemented as a Spark Scala
//! program to attain scalability" and stresses that "we do not simply employ
//! Spark but we can treat each trace in parallel" (§5.3). The only Spark
//! capability the system uses is an embarrassingly parallel map over traces,
//! so this crate provides exactly that: a scoped thread-pool map with
//! dynamic chunk scheduling, configurable from 1 thread (the paper's
//! "1 Spark executor" runs in Table 6) to all cores.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A parallel executor with a fixed degree of parallelism.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Executor {
    /// Executor with `threads` workers; `0` means "all available cores".
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        };
        Self { threads }
    }

    /// Single-threaded executor (the direct-comparison mode of Table 6).
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// Degree of parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item, returning results in input order.
    ///
    /// Work is claimed in chunks through a shared atomic cursor, so uneven
    /// per-item cost (traces differ wildly in length) balances across
    /// workers. Each worker accumulates `(chunk_start, results)` runs in a
    /// private buffer handed back through its join handle, so result
    /// collection is contention-free — the only shared write is the cursor
    /// `fetch_add`.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        if self.threads == 1 || items.len() == 1 {
            return items.iter().map(f).collect();
        }
        // Chunk size: enough chunks per worker for balance, at least 1 item.
        let chunk = (items.len() / (self.threads * 8)).max(1);
        let cursor = AtomicUsize::new(0);
        let f = &f;
        let cursor = &cursor;
        let mut parts: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= items.len() {
                                break;
                            }
                            let end = (start + chunk).min(items.len());
                            let out: Vec<R> = items[start..end].iter().map(f).collect();
                            local.push((start, out));
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("worker thread panicked")).collect()
        });
        parts.sort_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(items.len());
        for (_, part) in parts {
            out.extend(part);
        }
        out
    }

    /// Apply `f` to every item for its side effects.
    pub fn for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(&T) + Sync,
    {
        self.map(items, |t| f(t));
    }

    /// Parallel map followed by a sequential fold of the results.
    pub fn map_reduce<T, R, A, F, G>(&self, items: &[T], f: F, init: A, g: G) -> A
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        self.map(items, f).into_iter().fold(init, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order() {
        let ex = Executor::new(4);
        let items: Vec<u64> = (0..10_000).collect();
        let out = ex.map(&items, |&x| x * 2);
        assert_eq!(out.len(), items.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn map_matches_sequential_semantics() {
        let par = Executor::new(8);
        let seq = Executor::sequential();
        let items: Vec<u32> = (0..1000).map(|i| i * 7 % 251).collect();
        assert_eq!(par.map(&items, |&x| x as u64 + 1), seq.map(&items, |&x| x as u64 + 1));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let ex = Executor::new(4);
        let empty: Vec<u32> = vec![];
        assert!(ex.map(&empty, |&x| x).is_empty());
        assert_eq!(ex.map(&[42], |&x| x + 1), vec![43]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items of wildly uneven cost still all complete and stay ordered.
        let ex = Executor::new(4);
        let items: Vec<usize> = (0..200).collect();
        let out = ex.map(&items, |&n| {
            let mut acc = 0u64;
            for i in 0..(n * 50) as u64 {
                acc = acc.wrapping_add(i * i);
            }
            (n, acc)
        });
        for (i, (n, _)) in out.iter().enumerate() {
            assert_eq!(i, *n);
        }
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let ex = Executor::new(4);
        let counter = AtomicU64::new(0);
        let items: Vec<u64> = (1..=100).collect();
        ex.for_each(&items, |&x| {
            counter.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn map_reduce_folds() {
        let ex = Executor::new(3);
        let items: Vec<u64> = (1..=10).collect();
        let sum = ex.map_reduce(&items, |&x| x * x, 0u64, |a, b| a + b);
        assert_eq!(sum, 385);
    }

    #[test]
    fn zero_means_all_cores() {
        let ex = Executor::new(0);
        assert!(ex.threads() >= 1);
        let ex1 = Executor::sequential();
        assert_eq!(ex1.threads(), 1);
    }
}
