//! # seqdet-storage — embedded key-value table store
//!
//! The paper stores its inverted index and auxiliary tables in Cassandra,
//! "because of its proven capability to deal with big data … However, any
//! key-value store can be used in replacement" (§3). This crate is that
//! replacement: an embedded store exposing exactly the access pattern the
//! indexing and query layers need —
//!
//! * point `get` by key,
//! * whole-value `put`,
//! * **cheap record `append`** to a value (Cassandra-style wide-row growth:
//!   posting lists grow by appending, never by rewriting),
//! * table `scan` snapshots.
//!
//! Two backends implement the [`KvStore`] trait:
//!
//! * [`MemStore`] — sharded, lock-striped in-memory store (the default used
//!   by benchmarks; shards bound contention during parallel indexing),
//! * [`DiskStore`] — a log-structured persistent store: every mutation is
//!   appended to a segment file, the full state is replayed on open, and
//!   [`DiskStore::compact`] rewrites live data into a single snapshot
//!   segment.
//!
//! [`codec`] provides the fixed-width binary record encodings shared by the
//! index tables, and [`fxhash`] a fast non-cryptographic hasher (we cannot
//! depend on `rustc-hash`, so we carry the ~20-line algorithm ourselves).

pub mod codec;
pub mod crc;
pub mod disk;
pub mod error;
pub mod fxhash;
pub mod kv;
pub mod mem;
pub mod metrics;
pub mod run;
pub mod vfs;

pub use disk::{
    parse_segment_bytes, replay_segment_bytes, verify_segments, DiskOptions, DiskStore,
    DurabilityPolicy, RepairOutcome, ScrubOutcome, ScrubberHandle, SegmentEnd, SegmentReport,
    SegmentScan, SegmentViolation,
};
pub use error::{io_kind_is_transient, ErrorClass, StorageError};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use kv::{Coverage, KvStore, TableId};
pub use mem::MemStore;
pub use metrics::{LatencyHistogram, ServerMetrics, StoreMetrics};
pub use run::{
    verify_runs, DeltaOp, DeltaState, Manifest, ManifestRun, QuarantineSet, QuarantinedRun,
    RowZones, RunReader, RunReport, RunSet, RunViolation, ZoneExtractor, ZoneMap,
};
pub use vfs::{FaultFs, RealFs, RetryPolicy, RetryVfs, Vfs, VfsFile};
