//! Tiered immutable-run storage: sorted per-table run files, a
//! crash-consistent `RunSet` manifest, and the write delta that overlays
//! them.
//!
//! [`crate::DiskStore`]'s cold path stores its state as **runs**: immutable,
//! sorted, CRC-protected files of full key→value images, one file per
//! table, emitted by compaction. The set of live runs is named by a single
//! `MANIFEST` file whose atomic rename (`.tmp` + fsync + rename + dir
//! fsync, through the [`Vfs`] seam) is the only commit point — a run file
//! that no manifest references is an orphan replay ignores. The manifest
//! also records the `segment_floor`: the first segment number replay may
//! apply. Stale segments below the floor can *never* double-replay, even if
//! the post-compaction sweep failed to unlink them.
//!
//! ## Run file format (all integers little-endian)
//!
//! ```text
//! run      := MAGIC(u32) record* footer footer_start(u64) crc(u32) TAIL(u32)
//! record   := key_len(u32) val_len(u32) key value      -- strictly ascending keys
//! footer   := records(u64) len_bytes(min_key) len_bytes(max_key)
//!             has_zones(u8) trace_min(u32) trace_max(u32) ts_min(u64) ts_max(u64)
//! ```
//!
//! The footer is the run's **zone map**: min/max key, record count and —
//! when a [`ZoneExtractor`] could decode every record — the trace-id and
//! timestamp ranges of the rows inside. Queries consult it to skip whole
//! runs before touching a posting row, and retention drops runs whose whole
//! time range has expired. The CRC covers every byte before it (magic,
//! records, footer, footer offset).
//!
//! Readers load the file once into a reference-counted [`Bytes`] buffer
//! (the portable stand-in for mmap) and serve point reads as zero-copy
//! slices of it via binary search.

use crate::codec::{Dec, Enc};
use crate::crc::crc32;
use crate::error::StorageError;
use crate::fxhash::FxHashMap;
use crate::kv::TableId;
use crate::vfs::Vfs;
use bytes::Bytes;
use parking_lot::RwLock;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First bytes of every run file.
pub const RUN_MAGIC: u32 = 0x5351_524E; // "SQRN"
/// Last bytes of every run file.
const RUN_TAIL_MAGIC: u32 = 0x4E52_5153;
/// First bytes of the manifest.
const MANIFEST_MAGIC: u32 = 0x5351_4D46; // "SQMF"
/// Manifest format version this build writes and reads.
const MANIFEST_VERSION: u8 = 1;
/// File name of the run-set manifest inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// File name of run `id` for `table`.
pub fn run_file_name(id: u64, table: TableId) -> String {
    format!("run-{id:06}-t{:03}.run", table.0)
}

/// Parse a run file name back into `(id, table)`.
pub fn parse_run_file_name(name: &str) -> Option<(u64, TableId)> {
    let rest = name.strip_prefix("run-")?.strip_suffix(".run")?;
    let (id, table) = rest.split_once("-t")?;
    Some((id.parse().ok()?, TableId(table.parse::<u8>().ok()?)))
}

/// Trace-id and timestamp ranges of the rows inside one run — the part of
/// the zone map only the schema layer can derive (it has to decode posting
/// rows to see trace ids and completion timestamps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowZones {
    /// Smallest trace id referenced by any row.
    pub trace_min: u32,
    /// Largest trace id referenced by any row.
    pub trace_max: u32,
    /// Earliest timestamp referenced by any row.
    pub ts_min: u64,
    /// Latest timestamp referenced by any row.
    pub ts_max: u64,
}

impl RowZones {
    /// Merge two zone ranges into their union.
    pub fn merge(self, other: RowZones) -> RowZones {
        RowZones {
            trace_min: self.trace_min.min(other.trace_min),
            trace_max: self.trace_max.max(other.trace_max),
            ts_min: self.ts_min.min(other.ts_min),
            ts_max: self.ts_max.max(other.ts_max),
        }
    }
}

/// Derives per-row [`RowZones`] for the zone map. The storage crate cannot
/// decode the five tables' row formats, so compaction asks the schema layer
/// (installed via `DiskStore::set_zone_extractor`) for each record's
/// trace/timestamp ranges. Returning `None` for *any* record of a table
/// leaves that run without trace/ts zones (key-range pruning still applies;
/// retention never drops it).
pub trait ZoneExtractor: Send + Sync {
    /// Trace/timestamp ranges referenced by the row `(table, key, value)`.
    fn zones(&self, table: TableId, key: &[u8], value: &[u8]) -> Option<RowZones>;
}

/// The pruning metadata of one run, stored in its footer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneMap {
    /// Smallest key in the run.
    pub min_key: Vec<u8>,
    /// Largest key in the run.
    pub max_key: Vec<u8>,
    /// Number of records.
    pub records: u64,
    /// Trace/timestamp ranges, when every record yielded them.
    pub zones: Option<RowZones>,
}

impl ZoneMap {
    /// Whether `key` falls inside this run's key range. Uses plain byte-wise
    /// ordering — the same comparator the writer sorts with and the reader
    /// binary-searches with, so pruning can never skip a present key.
    pub fn covers_key(&self, key: &[u8]) -> bool {
        self.min_key.as_slice() <= key && key <= self.max_key.as_slice()
    }
}

/// Encode the footer + trailer for a run whose records span
/// `[4, footer_start)` of `buf`, and append them to `buf`.
fn append_footer(buf: &mut Vec<u8>, zone: &ZoneMap) {
    let footer_start = buf.len() as u64;
    let mut enc = Enc::with_capacity(64 + zone.min_key.len() + zone.max_key.len());
    enc.u64(zone.records).len_bytes(&zone.min_key).len_bytes(&zone.max_key);
    match zone.zones {
        Some(z) => {
            enc.u8(1).u32(z.trace_min).u32(z.trace_max).u64(z.ts_min).u64(z.ts_max);
        }
        None => {
            enc.u8(0).u32(0).u32(0).u64(0).u64(0);
        }
    }
    enc.u64(footer_start);
    buf.extend_from_slice(enc.as_slice());
    let crc = crc32(buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(&RUN_TAIL_MAGIC.to_le_bytes());
}

/// Serialize one run into a single buffer. `records` must be sorted
/// strictly ascending by key; an unsorted or duplicated key is a programmer
/// error reported as [`io::ErrorKind::InvalidInput`] (never written to
/// disk). Returns `None` for an empty record set — empty runs are never
/// materialized.
pub fn encode_run(
    table: TableId,
    records: &[(Vec<u8>, Bytes)],
    extractor: Option<&dyn ZoneExtractor>,
) -> io::Result<Option<(Vec<u8>, ZoneMap)>> {
    let (Some(first), Some(last)) = (records.first(), records.last()) else {
        return Ok(None);
    };
    let mut buf = Vec::with_capacity(
        4 + records.iter().map(|(k, v)| 8 + k.len() + v.len()).sum::<usize>() + 96,
    );
    buf.extend_from_slice(&RUN_MAGIC.to_le_bytes());
    let mut zones: Option<RowZones> = None;
    let mut all_zoned = true;
    let mut prev: Option<&[u8]> = None;
    for (key, value) in records {
        if prev.is_some_and(|p| p >= key.as_slice()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "run records are not strictly ascending by key",
            ));
        }
        prev = Some(key.as_slice());
        let mut enc = Enc::with_capacity(8 + key.len() + value.len());
        enc.u32(key.len() as u32).u32(value.len() as u32).bytes(key).bytes(value);
        buf.extend_from_slice(enc.as_slice());
        if all_zoned {
            match extractor.and_then(|x| x.zones(table, key, value)) {
                Some(z) => zones = Some(zones.map_or(z, |acc| acc.merge(z))),
                None => {
                    all_zoned = false;
                    zones = None;
                }
            }
        }
    }
    let zone = ZoneMap {
        min_key: first.0.clone(),
        max_key: last.0.clone(),
        records: records.len() as u64,
        zones,
    };
    append_footer(&mut buf, &zone);
    Ok(Some((buf, zone)))
}

/// Byte offsets of one record inside a run buffer. `u32` offsets bound run
/// files to < 4 GiB, which [`RunReader::open`] validates.
#[derive(Debug, Clone, Copy)]
struct RecIdx {
    key_off: u32,
    key_len: u32,
    val_off: u32,
    val_len: u32,
}

/// One immutable run, resident as a reference-counted byte buffer. Point
/// reads go through a resident hash index built at open (the sorted
/// on-disk order still serves zone pruning, range iteration, and merges)
/// and return zero-copy slices of the buffer.
pub struct RunReader {
    /// Run id (unique per store; from the manifest's `next_run_id`).
    pub id: u64,
    /// The table this run holds rows of.
    pub table: TableId,
    /// The file this run was read from.
    pub path: PathBuf,
    /// Zone map decoded from the footer.
    pub zone: ZoneMap,
    /// CRC stored in the trailer (the manifest cross-checks it).
    pub crc: u32,
    data: Bytes,
    index: Vec<RecIdx>,
    /// Key → record position. The open path walks every record anyway (to
    /// validate structure and key order), so building this costs one hash
    /// insert per record and turns the query path's point reads into O(1)
    /// probes instead of binary searches over cold pages.
    point: FxHashMap<Box<[u8]>, u32>,
}

impl std::fmt::Debug for RunReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunReader")
            .field("id", &self.id)
            .field("table", &self.table)
            .field("records", &self.zone.records)
            .finish()
    }
}

fn corrupt(path: &Path, reason: impl Into<String>) -> StorageError {
    StorageError::CorruptRun { path: path.to_path_buf(), reason: reason.into() }
}

impl RunReader {
    /// Read and fully validate the run at `path`: magic, trailer, CRC,
    /// footer shape, record structure, strictly-ascending keys, and zone
    /// containment (footer min/max must equal the actual first/last key).
    pub fn open(
        vfs: &dyn Vfs,
        path: &Path,
        id: u64,
        table: TableId,
    ) -> Result<RunReader, StorageError> {
        let raw = vfs.read(path)?;
        if raw.len() > u32::MAX as usize {
            return Err(corrupt(path, "run file exceeds 4 GiB"));
        }
        // magic + footer_start + crc + tail magic at minimum.
        if raw.len() < 4 + 8 + 4 + 4 {
            return Err(corrupt(path, "file too short for a run"));
        }
        let head = raw.get(..4).map(|b| Dec::new(b).u32());
        if head != Some(Some(RUN_MAGIC)) {
            return Err(corrupt(path, "bad run magic"));
        }
        let tail_start = raw.len() - 8;
        let mut tail = Dec::new(raw.get(tail_start..).unwrap_or(&[]));
        let (Some(stored_crc), Some(tail_magic)) = (tail.u32(), tail.u32()) else {
            return Err(corrupt(path, "unreadable trailer"));
        };
        if tail_magic != RUN_TAIL_MAGIC {
            return Err(corrupt(path, "bad tail magic"));
        }
        let covered = raw.get(..tail_start).unwrap_or(&[]);
        if crc32(covered) != stored_crc {
            return Err(corrupt(path, "checksum mismatch"));
        }
        let Some(footer_start) = covered
            .len()
            .checked_sub(8)
            .and_then(|off| covered.get(off..))
            .and_then(|b| Dec::new(b).u64())
        else {
            return Err(corrupt(path, "unreadable footer offset"));
        };
        let footer_start = footer_start as usize;
        let Some(footer_bytes) = covered.get(footer_start..covered.len() - 8) else {
            return Err(corrupt(path, "footer offset out of bounds"));
        };
        let mut d = Dec::new(footer_bytes);
        let (Some(records), Some(min_key), Some(max_key), Some(has_zones)) =
            (d.u64(), d.len_bytes(), d.len_bytes(), d.u8())
        else {
            return Err(corrupt(path, "truncated footer"));
        };
        let (Some(trace_min), Some(trace_max), Some(ts_min), Some(ts_max)) =
            (d.u32(), d.u32(), d.u64(), d.u64())
        else {
            return Err(corrupt(path, "truncated footer zones"));
        };
        if !d.is_done() {
            return Err(corrupt(path, "trailing bytes after footer"));
        }
        let zone = ZoneMap {
            min_key: min_key.to_vec(),
            max_key: max_key.to_vec(),
            records,
            zones: (has_zones == 1).then_some(RowZones { trace_min, trace_max, ts_min, ts_max }),
        };
        // Walk the record region, building the binary-search index.
        let Some(body) = covered.get(4..footer_start) else {
            return Err(corrupt(path, "record region out of bounds"));
        };
        let mut index = Vec::with_capacity(records as usize);
        let mut point = FxHashMap::default();
        point.reserve(records as usize);
        let mut d = Dec::new(body);
        let mut prev: Option<&[u8]> = None;
        while !d.is_done() {
            let off = 4 + (body.len() - d.remaining());
            let (Some(klen), Some(vlen)) = (d.u32(), d.u32()) else {
                return Err(corrupt(path, "truncated record header"));
            };
            let (Some(key), Some(_)) = (d.bytes(klen as usize), d.bytes(vlen as usize)) else {
                return Err(corrupt(path, "truncated record body"));
            };
            if prev.is_some_and(|p| p >= key) {
                return Err(corrupt(path, "keys not strictly ascending"));
            }
            prev = Some(key);
            point.insert(key.into(), index.len() as u32);
            index.push(RecIdx {
                key_off: (off + 8) as u32,
                key_len: klen,
                val_off: (off + 8) as u32 + klen,
                val_len: vlen,
            });
        }
        if index.len() as u64 != records {
            return Err(corrupt(
                path,
                format!("footer says {records} records, file holds {}", index.len()),
            ));
        }
        let first = index.first().map(|r| slice_of(&raw, r.key_off, r.key_len));
        let last = index.last().map(|r| slice_of(&raw, r.key_off, r.key_len));
        if records > 0
            && (first != Some(zone.min_key.as_slice()) || last != Some(zone.max_key.as_slice()))
        {
            return Err(corrupt(path, "zone key range does not match record keys"));
        }
        Ok(RunReader {
            id,
            table,
            path: path.to_path_buf(),
            zone,
            crc: stored_crc,
            data: Bytes::from(raw),
            index,
            point,
        })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the run holds no records (never produced by compaction).
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Size of the backing file in bytes.
    pub fn file_bytes(&self) -> usize {
        self.data.len()
    }

    /// Whether `key` is present (zone check + point-index probe).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.lookup(key).is_some()
    }

    fn lookup(&self, key: &[u8]) -> Option<&RecIdx> {
        // The zone check first: on a partitioned store most probes miss
        // most runs, and the min/max compare is cheaper than a hash.
        if !self.zone.covers_key(key) {
            return None;
        }
        self.point.get(key).and_then(|&i| self.index.get(i as usize))
    }

    /// Zero-copy point read: the returned [`Bytes`] is a slice of the run's
    /// resident buffer.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        let r = self.lookup(key)?;
        Some(self.data.slice(r.val_off as usize..(r.val_off + r.val_len) as usize))
    }

    /// Iterate `(key, value)` in key order, values zero-copy.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Bytes)> + '_ {
        self.index.iter().map(|r| {
            (
                slice_of(&self.data, r.key_off, r.key_len),
                self.data.slice(r.val_off as usize..(r.val_off + r.val_len) as usize),
            )
        })
    }
}

fn slice_of(data: &[u8], off: u32, len: u32) -> &[u8] {
    data.get(off as usize..(off + len) as usize).unwrap_or(&[])
}

/// One run referenced by the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestRun {
    /// Run id (names the file together with `table`).
    pub id: u64,
    /// Table the run holds rows of.
    pub table: TableId,
    /// Expected CRC of the run file's covered region.
    pub crc: u32,
}

/// The persisted description of a store's immutable tier: which runs are
/// live and where segment replay starts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// First segment number replay may apply. Segments below the floor are
    /// superseded by the runs and ignored — which is what makes a failed
    /// post-compaction sweep harmless.
    pub segment_floor: u64,
    /// Next unused run id.
    pub next_run_id: u64,
    /// Live runs, in the order compaction wrote them.
    pub runs: Vec<ManifestRun>,
}

/// Serialize a manifest (including its trailing CRC).
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut enc = Enc::with_capacity(32 + m.runs.len() * 16);
    enc.u32(MANIFEST_MAGIC).u8(MANIFEST_VERSION).u64(m.segment_floor).u64(m.next_run_id);
    enc.u32(m.runs.len() as u32);
    for r in &m.runs {
        enc.u64(r.id).u8(r.table.0).u32(r.crc);
    }
    let mut buf = enc.into_vec();
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Decode and verify a manifest buffer.
pub fn decode_manifest(path: &Path, data: &[u8]) -> Result<Manifest, StorageError> {
    if data.len() < 4 {
        return Err(corrupt(path, "manifest too short"));
    }
    let body_len = data.len() - 4;
    let (body, tail) = data.split_at(body_len);
    if Dec::new(tail).u32() != Some(crc32(body)) {
        return Err(corrupt(path, "manifest checksum mismatch"));
    }
    let mut d = Dec::new(body);
    let (Some(magic), Some(version), Some(segment_floor), Some(next_run_id), Some(count)) =
        (d.u32(), d.u8(), d.u64(), d.u64(), d.u32())
    else {
        return Err(corrupt(path, "truncated manifest header"));
    };
    if magic != MANIFEST_MAGIC {
        return Err(corrupt(path, "bad manifest magic"));
    }
    if version != MANIFEST_VERSION {
        return Err(corrupt(path, format!("unsupported manifest version {version}")));
    }
    let mut runs: Vec<ManifestRun> = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let (Some(id), Some(table), Some(crc)) = (d.u64(), d.u8(), d.u32()) else {
            return Err(corrupt(path, "truncated manifest run entry"));
        };
        // Run ids come from the monotone `next_run_id` counter, so a
        // repeated id means the manifest itself is damaged — refusing it
        // here keeps replay from opening (or double-counting) one file
        // under two entries.
        if runs.iter().any(|r| r.id == id) {
            return Err(corrupt(path, format!("duplicate run id {id} in manifest")));
        }
        runs.push(ManifestRun { id, table: TableId(table), crc });
    }
    if !d.is_done() {
        return Err(corrupt(path, "trailing bytes in manifest"));
    }
    Ok(Manifest { segment_floor, next_run_id, runs })
}

/// Read the manifest of `dir`, or `Ok(None)` when the store has none yet
/// (a fresh or pre-run-tier directory).
pub fn read_manifest(vfs: &dyn Vfs, dir: &Path) -> Result<Option<Manifest>, StorageError> {
    let path = dir.join(MANIFEST_NAME);
    let names = vfs.read_dir_names(dir)?;
    if !names.iter().any(|n| n == MANIFEST_NAME) {
        return Ok(None);
    }
    let data = vfs.read(&path)?;
    decode_manifest(&path, &data).map(Some)
}

/// Atomically replace the manifest of `dir`: write to `MANIFEST.tmp`,
/// fsync, rename into place. The caller fsyncs the directory to make the
/// rename durable before relying on it.
pub fn write_manifest(vfs: &dyn Vfs, dir: &Path, m: &Manifest) -> io::Result<()> {
    let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
    let data = encode_manifest(m);
    let written = (|| -> io::Result<()> {
        let mut f = vfs.create(&tmp)?;
        f.write_all(&data)?;
        f.sync_all()?;
        Ok(())
    })();
    if let Err(e) = written {
        let _ = vfs.remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = vfs.rename(&tmp, &dir.join(MANIFEST_NAME)) {
        let _ = vfs.remove_file(&tmp);
        return Err(e);
    }
    Ok(())
}

/// The resident immutable tier: every live run, indexed per table.
#[derive(Debug, Default)]
pub struct RunSet {
    runs: Vec<Arc<RunReader>>,
    by_table: FxHashMap<TableId, Vec<usize>>,
}

impl RunSet {
    /// An empty tier (fresh or legacy store).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build a tier from opened readers.
    pub fn new(runs: Vec<Arc<RunReader>>) -> Self {
        let mut by_table: FxHashMap<TableId, Vec<usize>> = FxHashMap::default();
        for (i, r) in runs.iter().enumerate() {
            by_table.entry(r.table).or_default().push(i);
        }
        Self { runs, by_table }
    }

    /// All live runs.
    pub fn runs(&self) -> &[Arc<RunReader>] {
        &self.runs
    }

    /// Number of live runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when the tier holds no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The runs holding rows of `table`.
    pub fn for_table(&self, table: TableId) -> impl Iterator<Item = &Arc<RunReader>> + '_ {
        self.by_table.get(&table).into_iter().flatten().filter_map(|&i| self.runs.get(i))
    }

    /// Tables that have at least one run.
    pub fn tables(&self) -> Vec<TableId> {
        let mut t: Vec<TableId> = self.by_table.keys().copied().collect();
        t.sort_unstable();
        t
    }

    /// Zero-copy read of `key` from the newest run of `table` covering it.
    pub fn get(&self, table: TableId, key: &[u8]) -> Option<Bytes> {
        // Newest run wins; compaction produces at most one run per table,
        // so in practice there is no overlap to resolve.
        let idxs = self.by_table.get(&table)?;
        idxs.iter().rev().filter_map(|&i| self.runs.get(i)).find_map(|r| r.get(key))
    }

    /// [`get`](RunSet::get) with the zone-map membership check surfaced:
    /// every run of the table is reported to `on_run` as covered (`true`,
    /// its row index was searched) or zone-pruned (`false`, untouched).
    /// One pass — callers that would otherwise pair `key_may_exist` with
    /// `get` walk the runs once instead of twice.
    pub fn get_pruning(
        &self,
        table: TableId,
        key: &[u8],
        mut on_run: impl FnMut(bool),
    ) -> Option<Bytes> {
        let idxs = self.by_table.get(&table)?;
        let mut hit = None;
        for run in idxs.iter().rev().filter_map(|&i| self.runs.get(i)) {
            if run.zone.covers_key(key) {
                on_run(true);
                if hit.is_none() {
                    hit = run.get(key);
                }
            } else {
                on_run(false);
            }
        }
        hit
    }
}

/// One run pulled from the searched set after failing verification:
/// identity, diagnosis, and the key-range coverage the answers lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRun {
    /// Run id (names the file together with `table`).
    pub id: u64,
    /// Table whose rows the run held — the table whose answers narrowed.
    pub table: TableId,
    /// The damaged file (left on disk for diagnosis; never served from).
    pub path: PathBuf,
    /// What failed to verify.
    pub reason: String,
    /// Key range the run's zone map claimed, when the footer was still
    /// readable — the keys whose reads may now under-report.
    pub key_range: Option<(Vec<u8>, Vec<u8>)>,
    /// Record count the zone map claimed, when readable.
    pub records: Option<u64>,
}

/// The set of quarantined runs of one store. Corruption of an immutable
/// run is not fatal — runs are derived from the segment log — so instead
/// of failing reads, the store records the damaged run here, serves
/// answers from the survivors, and reports itself
/// [`Narrowed`](crate::kv::Coverage::Narrowed) until `repair()` rebuilds
/// the lost state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineSet {
    entries: Vec<QuarantinedRun>,
}

impl QuarantineSet {
    /// An empty (healthy) set.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing is quarantined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of quarantined runs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Every quarantined run, in quarantine order.
    pub fn entries(&self) -> &[QuarantinedRun] {
        &self.entries
    }

    /// Whether run `id` of `table` is quarantined.
    pub fn contains(&self, id: u64, table: TableId) -> bool {
        self.entries.iter().any(|e| e.id == id && e.table == table)
    }

    /// Record a quarantine event. Re-quarantining the same run (scrub and
    /// a read racing to diagnose the same damage) keeps the first entry.
    /// Returns whether the entry was new.
    pub fn record(&mut self, entry: QuarantinedRun) -> bool {
        if self.contains(entry.id, entry.table) {
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// Tables with at least one quarantined run, ascending.
    pub fn tables(&self) -> Vec<TableId> {
        let mut t: Vec<TableId> = Vec::new();
        for e in &self.entries {
            if !t.contains(&e.table) {
                t.push(e.table);
            }
        }
        t.sort_unstable();
        t
    }

    /// The coverage this quarantine state implies: `Full` when empty,
    /// otherwise `Narrowed` over the quarantined tables with the first
    /// entry's diagnosis as the reason.
    pub fn coverage(&self) -> crate::kv::Coverage {
        match self.entries.first() {
            None => crate::kv::Coverage::Full,
            Some(first) => crate::kv::Coverage::Narrowed {
                quarantined_tables: self.tables(),
                reason: first.reason.clone(),
            },
        }
    }

    /// Forget every entry (repair rebuilt the tier).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// One write recorded in the delta since the last compaction, relative to
/// whatever the immutable runs hold for the same key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// The key's value is exactly these bytes (run image shadowed).
    Put(Vec<u8>),
    /// These bytes follow the run image (or stand alone if the run has
    /// none).
    Append(Vec<u8>),
    /// The key is gone (run image shadowed).
    Delete,
}

type DeltaShard = RwLock<FxHashMap<(TableId, Box<[u8]>), DeltaOp>>;

const DELTA_SHARDS: usize = 16;

/// Sharded in-memory overlay of every mutation since the last compaction.
/// Mutations are serialized by the store's writer lock; reads take shard
/// read locks only.
#[derive(Debug)]
pub struct DeltaState {
    shards: Vec<DeltaShard>,
}

impl Default for DeltaState {
    fn default() -> Self {
        Self { shards: (0..DELTA_SHARDS).map(|_| RwLock::new(FxHashMap::default())).collect() }
    }
}

impl DeltaState {
    /// Fresh empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, table: TableId, key: &[u8]) -> &DeltaShard {
        let mut h = crate::fxhash::FxHasher::default();
        use std::hash::{Hash, Hasher};
        (table, key).hash(&mut h);
        // DELTA_SHARDS is a power of two, so the mask stays in bounds.
        &self.shards[(h.finish() as usize) & (DELTA_SHARDS - 1)]
    }

    /// The recorded op for `key`, if any (cloned out of the shard).
    pub fn get(&self, table: TableId, key: &[u8]) -> Option<DeltaOp> {
        self.shard(table, key).read().get(&(table, key.into()) as &(TableId, Box<[u8]>)).cloned()
    }

    /// Whether the delta holds *any* op for `key` (including `Delete`).
    pub fn contains(&self, table: TableId, key: &[u8]) -> bool {
        self.shard(table, key).read().contains_key(&(table, key.into()) as &(TableId, Box<[u8]>))
    }

    /// Record a full overwrite.
    pub fn record_put(&self, table: TableId, key: &[u8], value: &[u8]) {
        self.shard(table, key).write().insert((table, key.into()), DeltaOp::Put(value.to_vec()));
    }

    /// Record an append, folding it into the existing op for the key.
    pub fn record_append(&self, table: TableId, key: &[u8], value: &[u8]) {
        let mut shard = self.shard(table, key).write();
        match shard.entry((table, key.into())) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(DeltaOp::Append(value.to_vec()));
            }
            std::collections::hash_map::Entry::Occupied(mut e) => match e.get_mut() {
                DeltaOp::Put(v) | DeltaOp::Append(v) => v.extend_from_slice(value),
                DeltaOp::Delete => {
                    e.insert(DeltaOp::Put(value.to_vec()));
                }
            },
        }
    }

    /// Record a deletion.
    pub fn record_delete(&self, table: TableId, key: &[u8]) {
        self.shard(table, key).write().insert((table, key.into()), DeltaOp::Delete);
    }

    /// Drop every recorded op (legacy snapshot-marker replay).
    pub fn clear_all(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no op is recorded.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Snapshot of every `(table, key, op)` recorded.
    pub fn entries(&self) -> Vec<(TableId, Box<[u8]>, DeltaOp)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for ((t, k), op) in shard.iter() {
                out.push((*t, k.clone(), op.clone()));
            }
        }
        out
    }

    /// Snapshot of the ops recorded for `table`.
    pub fn entries_for(&self, table: TableId) -> Vec<(Box<[u8]>, DeltaOp)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for ((t, k), op) in shard.iter() {
                if *t == table {
                    out.push((k.clone(), op.clone()));
                }
            }
        }
        out
    }

    /// Tables with at least one recorded op.
    pub fn tables(&self) -> Vec<TableId> {
        let mut t: Vec<TableId> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for ((table, _), _) in shard.iter() {
                if !t.contains(table) {
                    t.push(*table);
                }
            }
        }
        t.sort_unstable();
        t
    }
}

/// One verification failure found by [`verify_runs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunViolation {
    /// Run or manifest file the damage lives in.
    pub path: PathBuf,
    /// What failed to verify.
    pub reason: String,
}

/// Outcome of a read-only verification pass over a store's run tier.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Whether a manifest was present (legacy stores have none).
    pub manifest: bool,
    /// First segment number replay applies (0 without a manifest).
    pub segment_floor: u64,
    /// Runs referenced by the manifest.
    pub runs: usize,
    /// Records across all verified runs.
    pub records: u64,
    /// Run files on disk that no manifest entry references (crash leftovers
    /// replay ignores; the next compaction sweeps them).
    pub orphans: usize,
    /// Verification failures (missing/damaged referenced runs, manifest
    /// damage).
    pub violations: Vec<RunViolation>,
}

impl RunReport {
    /// True when the manifest and every referenced run verified.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verify the run tier of `dir` read-only: manifest checksum, every
/// referenced run's structure (CRC, sort order, zone containment) and the
/// manifest↔file CRC cross-check. Damage is collected, not failed on, so
/// the auditor reports everything at once. A directory without a manifest
/// reports clean (legacy stores).
pub fn verify_runs(vfs: &dyn Vfs, dir: &Path) -> Result<RunReport, StorageError> {
    let mut report = RunReport::default();
    let manifest = match read_manifest(vfs, dir) {
        Ok(m) => m,
        Err(StorageError::CorruptRun { path, reason }) => {
            report.manifest = true;
            report.violations.push(RunViolation { path, reason });
            return Ok(report);
        }
        Err(e) => return Err(e),
    };
    let Some(manifest) = manifest else {
        return Ok(report);
    };
    report.manifest = true;
    report.segment_floor = manifest.segment_floor;
    report.runs = manifest.runs.len();
    let mut referenced: Vec<String> = Vec::with_capacity(manifest.runs.len());
    for entry in &manifest.runs {
        let name = run_file_name(entry.id, entry.table);
        let path = dir.join(&name);
        referenced.push(name);
        match RunReader::open(vfs, &path, entry.id, entry.table) {
            Ok(r) => {
                report.records += r.zone.records;
                if r.crc != entry.crc {
                    report.violations.push(RunViolation {
                        path,
                        reason: format!(
                            "manifest expects crc {:08x}, file has {:08x}",
                            entry.crc, r.crc
                        ),
                    });
                }
            }
            Err(StorageError::CorruptRun { path, reason }) => {
                report.violations.push(RunViolation { path, reason });
            }
            Err(StorageError::Io(e)) => {
                report.violations.push(RunViolation { path, reason: format!("unreadable: {e}") });
            }
            Err(e) => {
                report.violations.push(RunViolation { path, reason: e.to_string() });
            }
        }
    }
    for name in vfs.read_dir_names(dir)? {
        if parse_run_file_name(&name).is_some() && !referenced.contains(&name) {
            report.orphans += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealFs;
    use std::fs;

    const T: TableId = TableId(1);

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seqdet-run-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn recs(pairs: &[(&[u8], &[u8])]) -> Vec<(Vec<u8>, Bytes)> {
        pairs.iter().map(|(k, v)| (k.to_vec(), Bytes::copy_from_slice(v))).collect()
    }

    struct FixedZones(RowZones);
    impl ZoneExtractor for FixedZones {
        fn zones(&self, _: TableId, _: &[u8], _: &[u8]) -> Option<RowZones> {
            Some(self.0)
        }
    }

    #[test]
    fn run_file_names_roundtrip() {
        let name = run_file_name(42, TableId(17));
        assert_eq!(name, "run-000042-t017.run");
        assert_eq!(parse_run_file_name(&name), Some((42, TableId(17))));
        assert_eq!(parse_run_file_name("seg-000001.log"), None);
        assert_eq!(parse_run_file_name("run-xx-t001.run"), None);
    }

    #[test]
    fn encode_and_read_back_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let records = recs(&[(b"aa", b"1"), (b"bb", b""), (b"cc", b"333")]);
        let (buf, zone) = encode_run(T, &records, None).unwrap().unwrap();
        assert_eq!(zone.min_key, b"aa");
        assert_eq!(zone.max_key, b"cc");
        assert_eq!(zone.records, 3);
        assert!(zone.zones.is_none());
        let path = dir.join(run_file_name(0, T));
        fs::write(&path, &buf).unwrap();
        let r = RunReader::open(&RealFs, &path, 0, T).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(b"aa").unwrap().as_ref(), b"1");
        assert_eq!(r.get(b"bb").unwrap().len(), 0);
        assert_eq!(r.get(b"cc").unwrap().as_ref(), b"333");
        assert!(r.get(b"ab").is_none());
        assert!(r.get(b"zz").is_none(), "outside the zone");
        let collected: Vec<_> = r.iter().map(|(k, v)| (k.to_vec(), v)).collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[0].0, b"aa");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_record_set_produces_no_run() {
        assert!(encode_run(T, &[], None).unwrap().is_none());
    }

    #[test]
    fn unsorted_records_are_refused() {
        let records = recs(&[(b"b", b"1"), (b"a", b"2")]);
        assert!(encode_run(T, &records, None).is_err());
        let dup = recs(&[(b"a", b"1"), (b"a", b"2")]);
        assert!(encode_run(T, &dup, None).is_err());
    }

    #[test]
    fn zones_merge_across_records_and_survive_the_footer() {
        let dir = tmp_dir("zones");
        let records = recs(&[(b"a", b"1"), (b"b", b"2")]);
        let z = RowZones { trace_min: 3, trace_max: 9, ts_min: 100, ts_max: 200 };
        let (buf, zone) = encode_run(T, &records, Some(&FixedZones(z))).unwrap().unwrap();
        assert_eq!(zone.zones, Some(z));
        let path = dir.join(run_file_name(1, T));
        fs::write(&path, &buf).unwrap();
        let r = RunReader::open(&RealFs, &path, 1, T).unwrap();
        assert_eq!(r.zone.zones, Some(z));
        assert!(r.zone.covers_key(b"a"));
        assert!(!r.zone.covers_key(b"c"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zone_merge_unions_ranges() {
        let a = RowZones { trace_min: 5, trace_max: 7, ts_min: 50, ts_max: 60 };
        let b = RowZones { trace_min: 1, trace_max: 6, ts_min: 55, ts_max: 90 };
        assert_eq!(a.merge(b), RowZones { trace_min: 1, trace_max: 7, ts_min: 50, ts_max: 90 });
    }

    #[test]
    fn damaged_runs_are_refused_with_corrupt_run() {
        let dir = tmp_dir("damage");
        let records = recs(&[(b"k1", b"v1"), (b"k2", b"v2")]);
        let (buf, _) = encode_run(T, &records, None).unwrap().unwrap();
        let path = dir.join(run_file_name(0, T));

        // Bit flip anywhere under the CRC.
        let mut bad = buf.clone();
        bad[6] ^= 0x40;
        fs::write(&path, &bad).unwrap();
        match RunReader::open(&RealFs, &path, 0, T) {
            Err(StorageError::CorruptRun { reason, .. }) => {
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected CorruptRun, got {other:?}"),
        }

        // Truncation loses the trailer.
        fs::write(&path, &buf[..buf.len() - 6]).unwrap();
        assert!(matches!(
            RunReader::open(&RealFs, &path, 0, T),
            Err(StorageError::CorruptRun { .. })
        ));

        // Garbage of plausible size.
        fs::write(&path, vec![0u8; 64]).unwrap();
        assert!(matches!(
            RunReader::open(&RealFs, &path, 0, T),
            Err(StorageError::CorruptRun { .. })
        ));

        // Too short for any run.
        fs::write(&path, b"xy").unwrap();
        assert!(matches!(
            RunReader::open(&RealFs, &path, 0, T),
            Err(StorageError::CorruptRun { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_roundtrips_and_detects_damage() {
        let dir = tmp_dir("manifest");
        assert_eq!(read_manifest(&RealFs, &dir).unwrap(), None);
        let m = Manifest {
            segment_floor: 7,
            next_run_id: 3,
            runs: vec![
                ManifestRun { id: 0, table: TableId(1), crc: 0xDEAD_BEEF },
                ManifestRun { id: 2, table: TableId(16), crc: 1 },
            ],
        };
        write_manifest(&RealFs, &dir, &m).unwrap();
        assert_eq!(read_manifest(&RealFs, &dir).unwrap(), Some(m.clone()));
        // Rewrites replace atomically.
        let m2 = Manifest { segment_floor: 9, next_run_id: 4, runs: vec![] };
        write_manifest(&RealFs, &dir, &m2).unwrap();
        assert_eq!(read_manifest(&RealFs, &dir).unwrap(), Some(m2));
        // Damage is refused.
        let path = dir.join(MANIFEST_NAME);
        let mut data = fs::read(&path).unwrap();
        data[5] ^= 0x01;
        fs::write(&path, &data).unwrap();
        assert!(matches!(
            read_manifest(&RealFs, &dir),
            Err(StorageError::CorruptRun { reason, .. }) if reason.contains("checksum")
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_rejects_duplicate_run_ids() {
        let m = Manifest {
            segment_floor: 0,
            next_run_id: 2,
            runs: vec![
                ManifestRun { id: 1, table: TableId(1), crc: 0xAA },
                ManifestRun { id: 1, table: TableId(2), crc: 0xBB },
            ],
        };
        let data = encode_manifest(&m);
        match decode_manifest(Path::new("MANIFEST"), &data) {
            Err(StorageError::CorruptRun { reason, .. }) => {
                assert!(reason.contains("duplicate run id 1"), "{reason}");
            }
            other => panic!("expected CorruptRun, got {other:?}"),
        }
        // Distinct ids across any tables stay accepted.
        let ok = Manifest {
            segment_floor: 0,
            next_run_id: 3,
            runs: vec![
                ManifestRun { id: 1, table: TableId(1), crc: 0xAA },
                ManifestRun { id: 2, table: TableId(1), crc: 0xBB },
            ],
        };
        let data = encode_manifest(&ok);
        assert_eq!(decode_manifest(Path::new("MANIFEST"), &data).unwrap(), ok);
    }

    #[test]
    fn quarantine_set_tracks_runs_and_coverage() {
        use crate::kv::Coverage;
        let mut q = QuarantineSet::new();
        assert!(q.is_empty());
        assert_eq!(q.coverage(), Coverage::Full);
        let entry = |id: u64, table: u8| QuarantinedRun {
            id,
            table: TableId(table),
            path: PathBuf::from(run_file_name(id, TableId(table))),
            reason: "checksum mismatch".into(),
            key_range: Some((b"a".to_vec(), b"z".to_vec())),
            records: Some(10),
        };
        assert!(q.record(entry(3, 2)));
        assert!(q.record(entry(1, 1)));
        // Re-quarantining the same run is a no-op.
        assert!(!q.record(entry(3, 2)));
        assert_eq!(q.len(), 2);
        assert!(q.contains(3, TableId(2)));
        assert!(!q.contains(3, TableId(1)));
        assert_eq!(q.tables(), vec![TableId(1), TableId(2)]);
        match q.coverage() {
            Coverage::Narrowed { quarantined_tables, reason } => {
                assert_eq!(quarantined_tables, vec![TableId(1), TableId(2)]);
                assert!(reason.contains("checksum"), "{reason}");
            }
            Coverage::Full => panic!("expected Narrowed"),
        }
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.coverage(), Coverage::Full);
    }

    #[test]
    fn runset_serves_per_table_reads() {
        let dir = tmp_dir("runset");
        let mk = |id: u64, table: TableId, pairs: &[(&[u8], &[u8])]| {
            let (buf, _) = encode_run(table, &recs(pairs), None).unwrap().unwrap();
            let path = dir.join(run_file_name(id, table));
            fs::write(&path, &buf).unwrap();
            Arc::new(RunReader::open(&RealFs, &path, id, table).unwrap())
        };
        let r0 = mk(0, TableId(1), &[(b"a", b"1")]);
        let r1 = mk(1, TableId(2), &[(b"a", b"2"), (b"b", b"3")]);
        let set = RunSet::new(vec![r0, r1]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.tables(), vec![TableId(1), TableId(2)]);
        assert_eq!(set.get(TableId(1), b"a").unwrap().as_ref(), b"1");
        assert_eq!(set.get(TableId(2), b"a").unwrap().as_ref(), b"2");
        assert!(set.get(TableId(3), b"a").is_none());
        assert_eq!(set.for_table(TableId(2)).count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_op_algebra() {
        let d = DeltaState::new();
        assert!(d.is_empty());
        // put then append extends the put.
        d.record_put(T, b"k", b"ab");
        d.record_append(T, b"k", b"c");
        assert_eq!(d.get(T, b"k"), Some(DeltaOp::Put(b"abc".to_vec())));
        // bare append stays an append (base lives in the runs).
        d.record_append(T, b"j", b"x");
        d.record_append(T, b"j", b"y");
        assert_eq!(d.get(T, b"j"), Some(DeltaOp::Append(b"xy".to_vec())));
        // delete then append restarts from empty — the delete shadowed the
        // run image, so the append defines the full value.
        d.record_delete(T, b"k");
        assert_eq!(d.get(T, b"k"), Some(DeltaOp::Delete));
        d.record_append(T, b"k", b"z");
        assert_eq!(d.get(T, b"k"), Some(DeltaOp::Put(b"z".to_vec())));
        assert!(d.contains(T, b"j"));
        assert!(!d.contains(T, b"missing"));
        assert_eq!(d.len(), 2);
        assert_eq!(d.tables(), vec![T]);
        assert_eq!(d.entries_for(T).len(), 2);
        d.clear_all();
        assert!(d.is_empty());
    }

    #[test]
    fn verify_runs_reports_damage_and_orphans() {
        let dir = tmp_dir("verify");
        // No manifest: clean legacy report.
        let clean = verify_runs(&RealFs, &dir).unwrap();
        assert!(clean.ok());
        assert!(!clean.manifest);

        let (buf, _) = encode_run(T, &recs(&[(b"a", b"1")]), None).unwrap().unwrap();
        let good = dir.join(run_file_name(0, T));
        fs::write(&good, &buf).unwrap();
        let crc = RunReader::open(&RealFs, &good, 0, T).unwrap().crc;
        // An orphan run file nothing references.
        fs::write(dir.join(run_file_name(9, T)), &buf).unwrap();
        let m = Manifest {
            segment_floor: 1,
            next_run_id: 1,
            runs: vec![ManifestRun { id: 0, table: T, crc }],
        };
        write_manifest(&RealFs, &dir, &m).unwrap();
        let report = verify_runs(&RealFs, &dir).unwrap();
        assert!(report.ok(), "{report:?}");
        assert_eq!(report.runs, 1);
        assert_eq!(report.records, 1);
        assert_eq!(report.orphans, 1);
        assert_eq!(report.segment_floor, 1);

        // Damage the referenced run: reported, not failed on.
        let mut bad = buf.clone();
        bad[6] ^= 0x01;
        fs::write(&good, &bad).unwrap();
        let report = verify_runs(&RealFs, &dir).unwrap();
        assert!(!report.ok());
        assert_eq!(report.violations.len(), 1);

        // A missing referenced run is also a violation.
        fs::remove_file(&good).unwrap();
        let report = verify_runs(&RealFs, &dir).unwrap();
        assert!(!report.ok());
        assert!(report.violations[0].reason.contains("unreadable"), "{report:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
