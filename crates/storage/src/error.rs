//! Typed errors of the storage layer.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors surfaced by the persistent store.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A segment file holds a record whose checksum (or structure) does not
    /// verify. Unlike a torn *tail* record — which a crash legitimately
    /// produces and replay silently drops — a mid-segment mismatch means
    /// persisted data was altered after it was acknowledged, and nothing
    /// after the damaged record can be trusted.
    CorruptSegment {
        /// Segment file the damaged record lives in.
        segment: PathBuf,
        /// Byte offset of the damaged record within the segment.
        offset: usize,
        /// What failed to verify.
        reason: String,
    },
    /// A run file or the run-set manifest fails its structural checks
    /// (magic, checksum, sort order, zone containment). Runs are written
    /// whole and published atomically by the manifest rename, so a torn run
    /// can only be an *orphan* replay ignores — a referenced run that fails
    /// verification means acknowledged state was damaged after the fact.
    CorruptRun {
        /// Run or manifest file the damage lives in.
        path: PathBuf,
        /// What failed to verify.
        reason: String,
    },
    /// The store has entered its sticky read-only degraded state after an
    /// earlier write failure: in-memory state may be ahead of the durable
    /// committed prefix, so further writes are refused while reads keep
    /// serving. Recovery is a process restart (replay lands on the last
    /// committed-batch boundary).
    Degraded {
        /// The write failure that degraded the store.
        reason: String,
    },
}

/// Coarse failure class driving the recovery strategy: transient failures
/// are retried, permanent write failures trip the sticky degraded fuse, and
/// corruption of acknowledged data quarantines the damaged unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The operation may succeed if simply re-issued (interrupted syscall,
    /// timeout, momentary resource exhaustion). [`crate::vfs::RetryVfs`]
    /// absorbs these with bounded exponential backoff.
    Transient,
    /// The operation failed and retrying will not help (ENOSPC, EACCES,
    /// hardware write error). On the write path this trips the sticky
    /// read-only degraded fuse.
    Permanent,
    /// Persisted, acknowledged data no longer verifies (checksum, magic,
    /// structure). Retrying re-reads the same damaged bytes; the unit is
    /// quarantined and rebuilt from the segment log instead.
    Corruption,
}

/// True when an [`io::ErrorKind`] is worth retrying: the failure is a
/// property of the *moment*, not of the operation.
pub fn io_kind_is_transient(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

impl StorageError {
    /// True for [`StorageError::Degraded`] — the caller hit the read-only
    /// fuse, not a fresh I/O failure.
    pub fn is_degraded(&self) -> bool {
        matches!(self, StorageError::Degraded { .. })
    }

    /// Classify this error into the recovery strategy it calls for:
    /// transient → retry, permanent → degraded fuse, corruption →
    /// quarantine + repair. The sticky [`StorageError::Degraded`] state is
    /// the *consequence* of a permanent failure and classifies as such.
    pub fn classify(&self) -> ErrorClass {
        match self {
            StorageError::Io(e) if io_kind_is_transient(e.kind()) => ErrorClass::Transient,
            StorageError::Io(_) | StorageError::Degraded { .. } => ErrorClass::Permanent,
            StorageError::CorruptSegment { .. } | StorageError::CorruptRun { .. } => {
                ErrorClass::Corruption
            }
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::CorruptSegment { segment, offset, reason } => {
                write!(f, "corrupt segment {}: {reason} at byte {offset}", segment.display())
            }
            StorageError::CorruptRun { path, reason } => {
                write!(f, "corrupt run {}: {reason}", path.display())
            }
            StorageError::Degraded { reason } => {
                write!(f, "store is read-only (degraded): {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::CorruptSegment { .. }
            | StorageError::CorruptRun { .. }
            | StorageError::Degraded { .. } => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<StorageError> for io::Error {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::Io(e) => e,
            degraded @ StorageError::Degraded { .. } => io::Error::other(degraded.to_string()),
            corrupt => io::Error::new(io::ErrorKind::InvalidData, corrupt.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = StorageError::CorruptSegment {
            segment: PathBuf::from("seg-000001.log"),
            offset: 42,
            reason: "checksum mismatch".into(),
        };
        let text = e.to_string();
        assert!(text.contains("seg-000001.log") && text.contains("byte 42"), "{text}");
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);

        let e: StorageError = io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
        use std::error::Error;
        assert!(e.source().is_some());

        let e = StorageError::CorruptRun {
            path: PathBuf::from("run-000001-t001.run"),
            reason: "keys not strictly ascending".into(),
        };
        assert!(e.to_string().contains("run-000001-t001.run"), "{e}");
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);

        let e = StorageError::Degraded { reason: "segment write failed".into() };
        assert!(e.is_degraded());
        assert!(e.to_string().contains("read-only"), "{e}");
        let io_err: io::Error = e.into();
        assert!(io_err.to_string().contains("degraded"));
    }

    #[test]
    fn classification_matches_recovery_strategy() {
        let transient: StorageError = io::Error::from(io::ErrorKind::Interrupted).into();
        assert_eq!(transient.classify(), ErrorClass::Transient);
        let transient: StorageError = io::Error::from(io::ErrorKind::TimedOut).into();
        assert_eq!(transient.classify(), ErrorClass::Transient);

        let permanent: StorageError = io::Error::other("disk on fire").into();
        assert_eq!(permanent.classify(), ErrorClass::Permanent);
        let permanent: StorageError = io::Error::from(io::ErrorKind::PermissionDenied).into();
        assert_eq!(permanent.classify(), ErrorClass::Permanent);
        let degraded = StorageError::Degraded { reason: "earlier write failed".into() };
        assert_eq!(degraded.classify(), ErrorClass::Permanent);

        let corrupt = StorageError::CorruptRun {
            path: PathBuf::from("run-000001-t001.run"),
            reason: "checksum mismatch".into(),
        };
        assert_eq!(corrupt.classify(), ErrorClass::Corruption);
        let corrupt = StorageError::CorruptSegment {
            segment: PathBuf::from("seg-000001.log"),
            offset: 0,
            reason: "checksum mismatch".into(),
        };
        assert_eq!(corrupt.classify(), ErrorClass::Corruption);
    }

    #[test]
    fn transient_kind_predicate() {
        assert!(io_kind_is_transient(io::ErrorKind::Interrupted));
        assert!(io_kind_is_transient(io::ErrorKind::WouldBlock));
        assert!(io_kind_is_transient(io::ErrorKind::TimedOut));
        assert!(!io_kind_is_transient(io::ErrorKind::NotFound));
        assert!(!io_kind_is_transient(io::ErrorKind::InvalidData));
        assert!(!io_kind_is_transient(io::ErrorKind::Other));
    }
}
