//! Typed errors of the storage layer.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors surfaced by the persistent store.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A segment file holds a record whose checksum (or structure) does not
    /// verify. Unlike a torn *tail* record — which a crash legitimately
    /// produces and replay silently drops — a mid-segment mismatch means
    /// persisted data was altered after it was acknowledged, and nothing
    /// after the damaged record can be trusted.
    CorruptSegment {
        /// Segment file the damaged record lives in.
        segment: PathBuf,
        /// Byte offset of the damaged record within the segment.
        offset: usize,
        /// What failed to verify.
        reason: String,
    },
    /// A run file or the run-set manifest fails its structural checks
    /// (magic, checksum, sort order, zone containment). Runs are written
    /// whole and published atomically by the manifest rename, so a torn run
    /// can only be an *orphan* replay ignores — a referenced run that fails
    /// verification means acknowledged state was damaged after the fact.
    CorruptRun {
        /// Run or manifest file the damage lives in.
        path: PathBuf,
        /// What failed to verify.
        reason: String,
    },
    /// The store has entered its sticky read-only degraded state after an
    /// earlier write failure: in-memory state may be ahead of the durable
    /// committed prefix, so further writes are refused while reads keep
    /// serving. Recovery is a process restart (replay lands on the last
    /// committed-batch boundary).
    Degraded {
        /// The write failure that degraded the store.
        reason: String,
    },
}

impl StorageError {
    /// True for [`StorageError::Degraded`] — the caller hit the read-only
    /// fuse, not a fresh I/O failure.
    pub fn is_degraded(&self) -> bool {
        matches!(self, StorageError::Degraded { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::CorruptSegment { segment, offset, reason } => {
                write!(f, "corrupt segment {}: {reason} at byte {offset}", segment.display())
            }
            StorageError::CorruptRun { path, reason } => {
                write!(f, "corrupt run {}: {reason}", path.display())
            }
            StorageError::Degraded { reason } => {
                write!(f, "store is read-only (degraded): {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::CorruptSegment { .. }
            | StorageError::CorruptRun { .. }
            | StorageError::Degraded { .. } => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<StorageError> for io::Error {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::Io(e) => e,
            degraded @ StorageError::Degraded { .. } => io::Error::other(degraded.to_string()),
            corrupt => io::Error::new(io::ErrorKind::InvalidData, corrupt.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = StorageError::CorruptSegment {
            segment: PathBuf::from("seg-000001.log"),
            offset: 42,
            reason: "checksum mismatch".into(),
        };
        let text = e.to_string();
        assert!(text.contains("seg-000001.log") && text.contains("byte 42"), "{text}");
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);

        let e: StorageError = io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
        use std::error::Error;
        assert!(e.source().is_some());

        let e = StorageError::CorruptRun {
            path: PathBuf::from("run-000001-t001.run"),
            reason: "keys not strictly ascending".into(),
        };
        assert!(e.to_string().contains("run-000001-t001.run"), "{e}");
        let io_err: io::Error = e.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);

        let e = StorageError::Degraded { reason: "segment write failed".into() };
        assert!(e.is_degraded());
        assert!(e.to_string().contains("read-only"), "{e}");
        let io_err: io::Error = e.into();
        assert!(io_err.to_string().contains("degraded"));
    }
}
