//! In-memory sharded store.
//!
//! Rows live in `SHARDS` lock-striped hash maps keyed by `(table, key)`.
//! Striping matters because the pre-processing component writes pairs from
//! many traces in parallel (the paper's "parallelization-by-design", §5.3):
//! a single global lock would serialize exactly the part the paper
//! parallelizes.

use crate::error::StorageError;
use crate::fxhash::{hash_bytes, FxHashMap};
use crate::kv::{KvStore, TableId};
use crate::metrics::StoreMetrics;
use bytes::Bytes;
use parking_lot::RwLock;
use std::sync::Arc;

/// Number of lock stripes. Power of two; plenty for laptop-scale core counts.
const SHARDS: usize = 64;

type Shard = RwLock<FxHashMap<(TableId, Box<[u8]>), Vec<u8>>>;

/// Sharded in-memory [`KvStore`].
pub struct MemStore {
    shards: Vec<Shard>,
    metrics: Option<Arc<StoreMetrics>>,
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MemStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemStore").field("shards", &SHARDS).finish()
    }
}

impl MemStore {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(FxHashMap::default())).collect(),
            metrics: None,
        }
    }

    /// Store that records operation counts into `metrics`.
    pub fn with_metrics(metrics: Arc<StoreMetrics>) -> Self {
        let mut s = Self::new();
        s.metrics = Some(metrics);
        s
    }

    #[inline]
    fn shard(&self, table: TableId, key: &[u8]) -> &Shard {
        // Mix the table id into the shard choice so same-key rows of
        // different tables don't contend.
        let h = hash_bytes(key) ^ (table.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// Total number of rows across all tables.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no rows exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every row of every table (used by compaction).
    pub fn scan_all(&self) -> Vec<(TableId, Bytes, Bytes)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for ((t, k), v) in shard.iter() {
                out.push((*t, Bytes::copy_from_slice(k), Bytes::copy_from_slice(v)));
            }
        }
        out
    }

    /// Remove every row of `table`.
    pub fn clear_table(&self, table: TableId) {
        for shard in &self.shards {
            shard.write().retain(|(t, _), _| *t != table);
        }
    }

    /// Remove every row of every table (segment replay hits this at a
    /// snapshot marker: the snapshot supersedes all earlier segments).
    pub fn clear_all(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }
}

impl KvStore for MemStore {
    fn get(&self, table: TableId, key: &[u8]) -> Option<Bytes> {
        let shard = self.shard(table, key).read();
        let v = shard.get(&(table, key.into()) as &(TableId, Box<[u8]>));
        if let Some(m) = &self.metrics {
            m.record_get(v.map_or(0, Vec::len));
        }
        v.map(|v| Bytes::copy_from_slice(v))
    }

    fn put(&self, table: TableId, key: &[u8], value: &[u8]) -> Result<(), StorageError> {
        if let Some(m) = &self.metrics {
            m.record_put(value.len());
        }
        self.shard(table, key).write().insert((table, key.into()), value.to_vec());
        Ok(())
    }

    fn append(&self, table: TableId, key: &[u8], value: &[u8]) -> Result<(), StorageError> {
        if let Some(m) = &self.metrics {
            m.record_append(value.len());
        }
        let mut shard = self.shard(table, key).write();
        shard.entry((table, key.into())).or_default().extend_from_slice(value);
        Ok(())
    }

    fn delete(&self, table: TableId, key: &[u8]) -> Result<bool, StorageError> {
        if let Some(m) = &self.metrics {
            m.record_delete();
        }
        Ok(self
            .shard(table, key)
            .write()
            .remove(&(table, key.into()) as &(TableId, Box<[u8]>))
            .is_some())
    }

    fn scan(&self, table: TableId) -> Vec<(Bytes, Bytes)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for ((t, k), v) in shard.iter() {
                if *t == table {
                    out.push((Bytes::copy_from_slice(k), Bytes::copy_from_slice(v)));
                }
            }
        }
        out
    }

    fn table_len(&self, table: TableId) -> usize {
        self.shards.iter().map(|s| s.read().keys().filter(|(t, _)| *t == table).count()).sum()
    }

    fn flush(&self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: TableId = TableId(0);
    const T1: TableId = TableId(1);

    #[test]
    fn put_get_delete() {
        let s = MemStore::new();
        assert!(s.get(T0, b"k").is_none());
        s.put(T0, b"k", b"v1").unwrap();
        assert_eq!(s.get(T0, b"k").unwrap().as_ref(), b"v1");
        s.put(T0, b"k", b"v2").unwrap();
        assert_eq!(s.get(T0, b"k").unwrap().as_ref(), b"v2");
        assert!(s.delete(T0, b"k").unwrap());
        assert!(!s.delete(T0, b"k").unwrap());
        assert!(s.get(T0, b"k").is_none());
    }

    #[test]
    fn append_grows_rows() {
        let s = MemStore::new();
        s.append(T0, b"list", &[1, 2]).unwrap();
        s.append(T0, b"list", &[3]).unwrap();
        assert_eq!(s.get(T0, b"list").unwrap().as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn tables_are_isolated() {
        let s = MemStore::new();
        s.put(T0, b"k", b"zero").unwrap();
        s.put(T1, b"k", b"one").unwrap();
        assert_eq!(s.get(T0, b"k").unwrap().as_ref(), b"zero");
        assert_eq!(s.get(T1, b"k").unwrap().as_ref(), b"one");
        assert_eq!(s.table_len(T0), 1);
        s.clear_table(T0);
        assert_eq!(s.table_len(T0), 0);
        assert_eq!(s.table_len(T1), 1);
    }

    #[test]
    fn scan_returns_all_rows_of_table() {
        let s = MemStore::new();
        for i in 0..100u32 {
            s.put(T0, &i.to_le_bytes(), &[i as u8]).unwrap();
        }
        s.put(T1, b"other", b"x").unwrap();
        let mut rows = s.scan(T0);
        assert_eq!(rows.len(), 100);
        rows.sort();
        assert_eq!(rows[0].1.as_ref(), &[0]);
    }

    #[test]
    fn get_snapshot_survives_later_append() {
        let s = MemStore::new();
        s.append(T0, b"k", b"abc").unwrap();
        let snap = s.get(T0, b"k").unwrap();
        s.append(T0, b"k", b"def").unwrap();
        assert_eq!(snap.as_ref(), b"abc");
        assert_eq!(s.get(T0, b"k").unwrap().as_ref(), b"abcdef");
    }

    #[test]
    fn concurrent_appends_do_not_lose_records() {
        let s = std::sync::Arc::new(MemStore::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        let key = (i % 16).to_le_bytes();
                        s.append(T0, &key, &[t as u8]).unwrap();
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let total: usize = s.scan(T0).iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 8 * 1000);
    }

    #[test]
    fn metrics_are_recorded() {
        let m = Arc::new(StoreMetrics::new());
        let s = MemStore::with_metrics(m.clone());
        s.put(T0, b"k", b"1234").unwrap();
        s.get(T0, b"k");
        s.append(T0, b"k", b"5").unwrap();
        s.delete(T0, b"k").unwrap();
        assert_eq!(m.puts(), 1);
        assert_eq!(m.gets(), 1);
        assert_eq!(m.appends(), 1);
        assert_eq!(m.deletes(), 1);
        assert_eq!(m.bytes_written(), 5);
        assert_eq!(m.bytes_read(), 4);
    }
}
