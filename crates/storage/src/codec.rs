//! Bounds-checked fixed-width binary encoding primitives.
//!
//! The index tables store flat little-endian records (postings are
//! `(trace: u32, ts_a: u64, ts_b: u64)` triples, sequences are
//! `(activity: u32, ts: u64)` pairs, …). [`Enc`] builds such rows; [`Dec`]
//! walks them without panicking on truncated input, so a corrupt disk row
//! surfaces as `None` rather than UB or a panic deep inside a query.

use bytes::{Buf, BufMut};

/// Append-only record encoder over a byte vector.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Append a `u8`.
    #[inline]
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Append a little-endian `u32`.
    #[inline]
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Append a little-endian `u64`.
    #[inline]
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Append raw bytes.
    #[inline]
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_slice(v);
        self
    }

    /// Append a length-prefixed byte string (`u32` length).
    #[inline]
    pub fn len_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.bytes(v)
    }

    /// Append an LEB128 varint (7 payload bits per byte, little-endian
    /// groups, high bit = continuation). At most 10 bytes for a `u64`.
    #[inline]
    pub fn varint(&mut self, mut v: u64) -> &mut Self {
        while v >= 0x80 {
            self.buf.put_u8((v as u8) | 0x80);
            v >>= 7;
        }
        self.buf.put_u8(v as u8);
        self
    }

    /// Append a zigzag-mapped varint: signed deltas near zero stay short.
    #[inline]
    pub fn varint_signed(&mut self, v: i64) -> &mut Self {
        self.varint(zigzag_encode(v))
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// View of the encoded bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Take ownership of the encoded bytes.
    #[inline]
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked cursor over encoded bytes.
#[derive(Debug, Clone)]
pub struct Dec<'a> {
    buf: &'a [u8],
}

impl<'a> Dec<'a> {
    /// Cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Remaining unread bytes.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when fully consumed.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.buf.is_empty()
    }

    /// Read a `u8`.
    #[inline]
    pub fn u8(&mut self) -> Option<u8> {
        if self.buf.is_empty() {
            return None;
        }
        Some(self.buf.get_u8())
    }

    /// Read a little-endian `u32`.
    #[inline]
    pub fn u32(&mut self) -> Option<u32> {
        if self.buf.len() < 4 {
            return None;
        }
        Some(self.buf.get_u32_le())
    }

    /// Read a little-endian `u64`.
    #[inline]
    pub fn u64(&mut self) -> Option<u64> {
        if self.buf.len() < 8 {
            return None;
        }
        Some(self.buf.get_u64_le())
    }

    /// Read `n` raw bytes.
    #[inline]
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    /// Read a `u32`-length-prefixed byte string.
    #[inline]
    pub fn len_bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()? as usize;
        self.bytes(n)
    }

    /// Read an LEB128 varint. `None` on truncation, on more than 10 bytes,
    /// and on a 10th byte carrying bits beyond `u64::MAX` — so every value
    /// has exactly one accepted encoding length ceiling and a decoder can
    /// never be driven past the buffer.
    #[inline]
    pub fn varint(&mut self) -> Option<u64> {
        let mut v: u64 = 0;
        for (i, &byte) in self.buf.iter().take(10).enumerate() {
            let payload = (byte & 0x7F) as u64;
            if i == 9 && byte > 0x01 {
                return None; // overflow past 64 bits (or non-canonical pad)
            }
            v |= payload << (7 * i);
            if byte & 0x80 == 0 {
                self.buf = &self.buf[i + 1..];
                return Some(v);
            }
        }
        None
    }

    /// Read a zigzag-mapped varint.
    #[inline]
    pub fn varint_signed(&mut self) -> Option<i64> {
        self.varint().map(zigzag_decode)
    }
}

/// Map a signed value to an unsigned one with small absolute values staying
/// small: `0, -1, 1, -2, … → 0, 1, 2, 3, …`.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut e = Enc::new();
        e.u8(7).u32(0xDEAD_BEEF).u64(u64::MAX).bytes(b"xy");
        let v = e.into_vec();
        let mut d = Dec::new(&v);
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.u32(), Some(0xDEAD_BEEF));
        assert_eq!(d.u64(), Some(u64::MAX));
        assert_eq!(d.bytes(2), Some(&b"xy"[..]));
        assert!(d.is_done());
    }

    #[test]
    fn truncated_reads_return_none() {
        let mut e = Enc::new();
        e.u32(1);
        let v = e.into_vec();
        let mut d = Dec::new(&v);
        assert_eq!(d.u64(), None); // not enough bytes
        assert_eq!(d.u32(), Some(1)); // cursor unchanged by the failed read
        assert_eq!(d.u8(), None);
    }

    #[test]
    fn len_prefixed_strings() {
        let mut e = Enc::new();
        e.len_bytes(b"hello").len_bytes(b"");
        let v = e.into_vec();
        let mut d = Dec::new(&v);
        assert_eq!(d.len_bytes(), Some(&b"hello"[..]));
        assert_eq!(d.len_bytes(), Some(&b""[..]));
        assert_eq!(d.len_bytes(), None);
    }

    #[test]
    fn len_prefix_longer_than_buffer_is_rejected() {
        let mut e = Enc::new();
        e.u32(1000); // claims 1000 bytes follow
        e.bytes(b"short");
        let v = e.into_vec();
        let mut d = Dec::new(&v);
        assert_eq!(d.len_bytes(), None);
    }

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 129, 16_383, 16_384, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            let mut e = Enc::new();
            e.varint(v);
            let buf = e.into_vec();
            let mut d = Dec::new(&buf);
            assert_eq!(d.varint(), Some(v), "value {v}");
            assert!(d.is_done());
        }
        // Length scaling: 7 payload bits per byte.
        let mut e = Enc::new();
        e.varint(127).varint(128).varint(u64::MAX);
        assert_eq!(e.len(), 1 + 2 + 10);
    }

    #[test]
    fn varint_signed_roundtrip() {
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX, -123_456_789] {
            let mut e = Enc::new();
            e.varint_signed(v);
            let buf = e.into_vec();
            let mut d = Dec::new(&buf);
            assert_eq!(d.varint_signed(), Some(v), "value {v}");
        }
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_decode(zigzag_encode(i64::MIN)), i64::MIN);
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        // Truncated: continuation bit set on the last available byte.
        let mut d = Dec::new(&[0x80]);
        assert_eq!(d.varint(), None);
        // 10 continuation bytes: too long for a u64.
        let mut d = Dec::new(&[0x80; 10]);
        assert_eq!(d.varint(), None);
        // 10th byte carries bits beyond the 64th.
        let mut buf = vec![0xFF; 9];
        buf.push(0x02);
        let mut d = Dec::new(&buf);
        assert_eq!(d.varint(), None);
        // ... while 0x01 in the 10th byte (u64::MAX) is fine.
        let mut buf = vec![0xFF; 9];
        buf.push(0x01);
        let mut d = Dec::new(&buf);
        assert_eq!(d.varint(), Some(u64::MAX));
    }

    #[test]
    fn capacity_and_len_accessors() {
        let mut e = Enc::with_capacity(64);
        assert!(e.is_empty());
        e.u64(1);
        assert_eq!(e.len(), 8);
        assert_eq!(e.as_slice().len(), 8);
        let d = Dec::new(e.as_slice());
        assert_eq!(d.remaining(), 8);
    }
}
