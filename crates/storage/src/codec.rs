//! Bounds-checked fixed-width binary encoding primitives.
//!
//! The index tables store flat little-endian records (postings are
//! `(trace: u32, ts_a: u64, ts_b: u64)` triples, sequences are
//! `(activity: u32, ts: u64)` pairs, …). [`Enc`] builds such rows; [`Dec`]
//! walks them without panicking on truncated input, so a corrupt disk row
//! surfaces as `None` rather than UB or a panic deep inside a query.

use bytes::{Buf, BufMut};

/// Append-only record encoder over a byte vector.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Append a `u8`.
    #[inline]
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Append a little-endian `u32`.
    #[inline]
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Append a little-endian `u64`.
    #[inline]
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Append raw bytes.
    #[inline]
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_slice(v);
        self
    }

    /// Append a length-prefixed byte string (`u32` length).
    #[inline]
    pub fn len_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.bytes(v)
    }

    /// Bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// View of the encoded bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Take ownership of the encoded bytes.
    #[inline]
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked cursor over encoded bytes.
#[derive(Debug, Clone)]
pub struct Dec<'a> {
    buf: &'a [u8],
}

impl<'a> Dec<'a> {
    /// Cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Remaining unread bytes.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when fully consumed.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.buf.is_empty()
    }

    /// Read a `u8`.
    #[inline]
    pub fn u8(&mut self) -> Option<u8> {
        if self.buf.is_empty() {
            return None;
        }
        Some(self.buf.get_u8())
    }

    /// Read a little-endian `u32`.
    #[inline]
    pub fn u32(&mut self) -> Option<u32> {
        if self.buf.len() < 4 {
            return None;
        }
        Some(self.buf.get_u32_le())
    }

    /// Read a little-endian `u64`.
    #[inline]
    pub fn u64(&mut self) -> Option<u64> {
        if self.buf.len() < 8 {
            return None;
        }
        Some(self.buf.get_u64_le())
    }

    /// Read `n` raw bytes.
    #[inline]
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    /// Read a `u32`-length-prefixed byte string.
    #[inline]
    pub fn len_bytes(&mut self) -> Option<&'a [u8]> {
        let n = self.u32()? as usize;
        self.bytes(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut e = Enc::new();
        e.u8(7).u32(0xDEAD_BEEF).u64(u64::MAX).bytes(b"xy");
        let v = e.into_vec();
        let mut d = Dec::new(&v);
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.u32(), Some(0xDEAD_BEEF));
        assert_eq!(d.u64(), Some(u64::MAX));
        assert_eq!(d.bytes(2), Some(&b"xy"[..]));
        assert!(d.is_done());
    }

    #[test]
    fn truncated_reads_return_none() {
        let mut e = Enc::new();
        e.u32(1);
        let v = e.into_vec();
        let mut d = Dec::new(&v);
        assert_eq!(d.u64(), None); // not enough bytes
        assert_eq!(d.u32(), Some(1)); // cursor unchanged by the failed read
        assert_eq!(d.u8(), None);
    }

    #[test]
    fn len_prefixed_strings() {
        let mut e = Enc::new();
        e.len_bytes(b"hello").len_bytes(b"");
        let v = e.into_vec();
        let mut d = Dec::new(&v);
        assert_eq!(d.len_bytes(), Some(&b"hello"[..]));
        assert_eq!(d.len_bytes(), Some(&b""[..]));
        assert_eq!(d.len_bytes(), None);
    }

    #[test]
    fn len_prefix_longer_than_buffer_is_rejected() {
        let mut e = Enc::new();
        e.u32(1000); // claims 1000 bytes follow
        e.bytes(b"short");
        let v = e.into_vec();
        let mut d = Dec::new(&v);
        assert_eq!(d.len_bytes(), None);
    }

    #[test]
    fn capacity_and_len_accessors() {
        let mut e = Enc::with_capacity(64);
        assert!(e.is_empty());
        e.u64(1);
        assert_eq!(e.len(), 8);
        assert_eq!(e.as_slice().len(), 8);
        let d = Dec::new(e.as_slice());
        assert_eq!(d.remaining(), 8);
    }
}
