//! CRC-32 (IEEE 802.3) — table-driven, implemented in-house since no
//! checksum crate is available offline.
//!
//! Guards every [`crate::DiskStore`] log record: a torn or bit-flipped
//! record must stop replay instead of silently corrupting the rebuilt
//! index.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Incremental CRC-32 over multiple slices.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feed more bytes.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        for &b in data {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
        self
    }

    /// Final checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"hello checksum world";
        let mut inc = Crc32::new();
        inc.update(&data[..5]).update(&data[5..12]).update(&data[12..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..64u8).collect();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "missed flip at {byte}:{bit}");
            }
        }
    }
}
