//! Log-structured persistent store.
//!
//! Every mutation is appended as one record to the active segment file; the
//! current state is kept in an inner [`MemStore`] (the "memtable") and
//! rebuilt by replaying segments on open. [`DiskStore::compact`] folds all
//! segments into a single snapshot segment of `put`s.
//!
//! This mirrors the write path Cassandra gives the paper — sequential
//! appends, point reads served from memory — at laptop scale, and keeps
//! index persistence across the periodic update runs of §3.1.3.
//!
//! ## Record format
//!
//! ```text
//! [crc32: u32 le][op: u8][table: u8][key_len: u32 le][val_len: u32 le][key][value]
//! ```
//!
//! `op`: 1 = put, 2 = append, 3 = delete (delete carries an empty value);
//! the checksum covers everything after itself. A truncated trailing record
//! (a torn write at crash) is ignored on replay, but a record that is
//! *followed by more data* and fails its checksum — or carries an unknown
//! op — is damage to acknowledged state: [`DiskStore::open`] surfaces it as
//! [`StorageError::CorruptSegment`] instead of silently truncating replay.
//! [`verify_segments`] runs the same checks read-only over a store
//! directory, for the cross-table auditor.

use crate::codec::{Dec, Enc};
use crate::crc::crc32;
use crate::error::StorageError;
use crate::kv::{KvStore, TableId};
use crate::mem::MemStore;
use bytes::Bytes;
use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const OP_PUT: u8 = 1;
const OP_APPEND: u8 = 2;
const OP_DELETE: u8 = 3;

/// Persistent [`KvStore`] backed by append-only segment files in one
/// directory.
pub struct DiskStore {
    dir: PathBuf,
    state: MemStore,
    writer: Mutex<Writer>,
}

struct Writer {
    file: BufWriter<File>,
    segment: u64,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore").field("dir", &self.dir).finish()
    }
}

fn segment_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("seg-{n:06}.log"))
}

/// Segment numbers present in `dir`, ascending.
fn list_segments(dir: &Path) -> io::Result<Vec<u64>> {
    let mut nums = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".log")) {
            if let Ok(n) = num.parse() {
                nums.push(n);
            }
        }
    }
    nums.sort_unstable();
    Ok(nums)
}

impl DiskStore {
    /// Open (or create) a store in `dir`, replaying any existing segments.
    ///
    /// A truncated trailing record (torn write at crash) is tolerated and
    /// dropped; a checksum mismatch anywhere else fails the open with
    /// [`StorageError::CorruptSegment`] — replaying past damaged state
    /// would silently serve a wrong index.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let state = MemStore::new();
        let segments = list_segments(&dir)?;
        for &n in &segments {
            replay_segment(&segment_path(&dir, n), &state)?;
        }
        let next = segments.last().map_or(0, |n| n + 1);
        let file = OpenOptions::new().create(true).append(true).open(segment_path(&dir, next))?;
        Ok(Self {
            dir,
            state,
            writer: Mutex::new(Writer { file: BufWriter::new(file), segment: next }),
        })
    }

    fn log(&self, op: u8, table: TableId, key: &[u8], value: &[u8]) {
        let rec = encode_record(op, table, key, value);
        let mut w = self.writer.lock();
        // An in-memory store mutation without its log record would be lost on
        // restart; treat log-write failure as fatal for this process.
        // xtask-lint: allow(no-panic): continuing past a lost log record would corrupt durability.
        w.file.write_all(&rec).expect("segment write failed");
    }

    /// Rewrite the full live state into a fresh snapshot segment and delete
    /// all older segments. Concurrent writers are blocked for the duration.
    pub fn compact(&self) -> io::Result<()> {
        let mut w = self.writer.lock();
        let snapshot = self.state.scan_all();
        let next = w.segment + 1;
        let path = segment_path(&self.dir, next);
        let mut out = BufWriter::new(File::create(&path)?);
        for (table, key, value) in &snapshot {
            out.write_all(&encode_record(OP_PUT, *table, key, value))?;
        }
        out.flush()?;
        out.get_ref().sync_all()?;
        // Swap the active segment, then remove the old ones.
        let old_active = w.segment;
        let active =
            OpenOptions::new().create(true).append(true).open(segment_path(&self.dir, next + 1))?;
        w.file.flush()?;
        w.file = BufWriter::new(active);
        w.segment = next + 1;
        drop(w);
        for n in list_segments(&self.dir)? {
            if n <= old_active {
                fs::remove_file(segment_path(&self.dir, n))?;
            }
        }
        Ok(())
    }

    /// Number of segment files currently on disk.
    pub fn num_segments(&self) -> io::Result<usize> {
        Ok(list_segments(&self.dir)?.len())
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Serialize one log record:
/// `[crc: u32 over the rest][op][table][key_len][val_len][key][value]`.
fn encode_record(op: u8, table: TableId, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut body = Enc::with_capacity(14 + key.len() + value.len());
    body.u8(op).u8(table.0).u32(key.len() as u32).u32(value.len() as u32).bytes(key).bytes(value);
    let mut rec = Enc::with_capacity(4 + body.len());
    rec.u32(crc32(body.as_slice())).bytes(body.as_slice());
    rec.into_vec()
}

/// How one pass over a segment's bytes ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentEnd {
    /// Every byte belonged to a whole, checksum-verified record.
    Clean {
        /// Number of records parsed.
        records: u64,
    },
    /// The final record is incomplete — the torn tail of a crashed write.
    /// Everything before `offset` was verified; the tail is dropped.
    TornTail {
        /// Records parsed before the tail.
        records: u64,
        /// Byte offset where the torn record starts.
        offset: usize,
    },
    /// A record failed verification with more data after it (or a verified
    /// record carries an unknown op). Nothing at or past `offset` can be
    /// trusted.
    Corrupt {
        /// Records parsed before the damage.
        records: u64,
        /// Byte offset of the damaged record.
        offset: usize,
        /// What failed to verify.
        reason: String,
    },
}

/// Parse the records of one segment, feeding each verified record to
/// `apply`. Never panics, whatever `data` holds — this is the surface the
/// decoder fuzz tests drive.
pub fn parse_segment_bytes(
    data: &[u8],
    mut apply: impl FnMut(u8, TableId, &[u8], &[u8]),
) -> SegmentEnd {
    let mut d = Dec::new(data);
    let mut records = 0u64;
    loop {
        let offset = data.len() - d.remaining();
        if d.is_done() {
            return SegmentEnd::Clean { records };
        }
        let Some(stored_crc) = d.u32() else {
            return SegmentEnd::TornTail { records, offset };
        };
        let body_start = data.len() - d.remaining();
        let (Some(op), Some(table), Some(klen), Some(vlen)) = (d.u8(), d.u8(), d.u32(), d.u32())
        else {
            return SegmentEnd::TornTail { records, offset };
        };
        let (Some(key), Some(value)) = (d.bytes(klen as usize), d.bytes(vlen as usize)) else {
            return SegmentEnd::TornTail { records, offset };
        };
        let body_end = data.len() - d.remaining();
        if crc32(&data[body_start..body_end]) != stored_crc {
            return SegmentEnd::Corrupt { records, offset, reason: "checksum mismatch".into() };
        }
        if !matches!(op, OP_PUT | OP_APPEND | OP_DELETE) {
            return SegmentEnd::Corrupt { records, offset, reason: format!("unknown op {op}") };
        }
        apply(op, TableId(table), key, value);
        records += 1;
    }
}

fn replay_segment(path: &Path, state: &MemStore) -> Result<(), StorageError> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let end = parse_segment_bytes(&data, |op, table, key, value| match op {
        OP_PUT => state.put(table, key, value),
        OP_APPEND => state.append(table, key, value),
        _ => {
            state.delete(table, key);
        }
    });
    match end {
        SegmentEnd::Clean { .. } | SegmentEnd::TornTail { .. } => Ok(()),
        SegmentEnd::Corrupt { offset, reason, .. } => {
            Err(StorageError::CorruptSegment { segment: path.to_path_buf(), offset, reason })
        }
    }
}

/// One verification failure found by [`verify_segments`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentViolation {
    /// Segment file the damage lives in.
    pub segment: PathBuf,
    /// Byte offset of the damaged record.
    pub offset: usize,
    /// What failed to verify.
    pub reason: String,
}

/// Outcome of a read-only checksum pass over every segment of a store
/// directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentReport {
    /// Segment files inspected.
    pub segments: usize,
    /// Whole, checksum-verified records across all segments.
    pub records: u64,
    /// Torn tail records dropped (at most one per segment; only the crash
    /// frontier may legitimately carry one).
    pub torn_tails: usize,
    /// Damaged records (parsing stops at the first one per segment).
    pub violations: Vec<SegmentViolation>,
}

impl SegmentReport {
    /// True when every record of every segment verified.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verify the CRC (and record structure) of every segment in `dir` without
/// mutating or replaying anything. Damage is *collected*, not failed on, so
/// the auditor can report all broken segments at once.
pub fn verify_segments(dir: impl AsRef<Path>) -> Result<SegmentReport, StorageError> {
    let dir = dir.as_ref();
    let mut report = SegmentReport::default();
    for n in list_segments(dir)? {
        let path = segment_path(dir, n);
        let mut data = Vec::new();
        File::open(&path)?.read_to_end(&mut data)?;
        report.segments += 1;
        match parse_segment_bytes(&data, |_, _, _, _| {}) {
            SegmentEnd::Clean { records } => report.records += records,
            SegmentEnd::TornTail { records, .. } => {
                report.records += records;
                report.torn_tails += 1;
            }
            SegmentEnd::Corrupt { records, offset, reason } => {
                report.records += records;
                report.violations.push(SegmentViolation { segment: path, offset, reason });
            }
        }
    }
    Ok(report)
}

impl KvStore for DiskStore {
    fn get(&self, table: TableId, key: &[u8]) -> Option<Bytes> {
        self.state.get(table, key)
    }

    fn put(&self, table: TableId, key: &[u8], value: &[u8]) {
        self.log(OP_PUT, table, key, value);
        self.state.put(table, key, value);
    }

    fn append(&self, table: TableId, key: &[u8], value: &[u8]) {
        self.log(OP_APPEND, table, key, value);
        self.state.append(table, key, value);
    }

    fn delete(&self, table: TableId, key: &[u8]) -> bool {
        self.log(OP_DELETE, table, key, &[]);
        self.state.delete(table, key)
    }

    fn scan(&self, table: TableId) -> Vec<(Bytes, Bytes)> {
        self.state.scan(table)
    }

    fn table_len(&self, table: TableId) -> usize {
        self.state.table_len(table)
    }

    fn flush(&self) -> io::Result<()> {
        let mut w = self.writer.lock();
        w.file.flush()?;
        w.file.get_ref().sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(3);

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seqdet-disk-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn basic_ops_behave_like_memstore() {
        let dir = tmp_dir("basic");
        let s = DiskStore::open(&dir).unwrap();
        s.put(T, b"k", b"v");
        s.append(T, b"k", b"2");
        assert_eq!(s.get(T, b"k").unwrap().as_ref(), b"v2");
        assert!(s.delete(T, b"k"));
        assert!(s.get(T, b"k").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn state_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1");
            s.append(T, b"b", b"xy");
            s.append(T, b"b", b"z");
            s.put(T, b"gone", b"1");
            s.delete(T, b"gone");
            s.flush().unwrap();
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"xyz");
        assert!(s.get(T, b"gone").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_reduces_segments_and_preserves_state() {
        let dir = tmp_dir("compact");
        {
            let s = DiskStore::open(&dir).unwrap();
            for i in 0..50u32 {
                s.append(T, b"k", &i.to_le_bytes());
            }
            s.flush().unwrap();
        }
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"x", b"y");
            s.flush().unwrap();
            assert!(s.num_segments().unwrap() >= 2);
            s.compact().unwrap();
            // snapshot + fresh active segment
            assert_eq!(s.num_segments().unwrap(), 2);
            assert_eq!(s.get(T, b"k").unwrap().len(), 200);
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"k").unwrap().len(), 200);
        assert_eq!(s.get(T, b"x").unwrap().as_ref(), b"y");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_after_compaction_survive_reopen() {
        let dir = tmp_dir("post-compact");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1");
            s.compact().unwrap();
            s.put(T, b"b", b"2");
            s.flush().unwrap();
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_record_is_ignored() {
        let dir = tmp_dir("torn");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"good", b"1");
            s.flush().unwrap();
        }
        // Corrupt: append half a record to the first segment.
        let seg = segment_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0xAA, 0xBB, 0xCC, 0xDD, OP_PUT, 3, 10, 0, 0, 0]).unwrap(); // torn record
        drop(f);
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"good").unwrap().as_ref(), b"1");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_fails_open_with_corrupt_segment() {
        let dir = tmp_dir("crc");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"first", b"1");
            s.put(T, b"second", b"2");
            s.flush().unwrap();
        }
        // Flip one bit inside the FIRST record's value: the damage sits
        // mid-segment (more data follows), so open must refuse rather than
        // silently truncate replay.
        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        let first_len = encode_record(OP_PUT, T, b"first", b"1").len();
        data[first_len - 1] ^= 0x01;
        fs::write(&seg, &data).unwrap();
        match DiskStore::open(&dir) {
            Err(StorageError::CorruptSegment { segment, offset, reason }) => {
                assert_eq!(segment, seg);
                assert_eq!(offset, 0);
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected CorruptSegment, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_final_record_also_fails_open() {
        // A checksum mismatch in the *last* record is still corruption (the
        // record is whole — a torn write cannot produce it), so open fails.
        let dir = tmp_dir("crc-tail");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"first", b"1");
            s.put(T, b"second", b"2");
            s.flush().unwrap();
        }
        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        let len = data.len();
        data[len - 1] ^= 0x01;
        fs::write(&seg, &data).unwrap();
        assert!(matches!(
            DiskStore::open(&dir),
            Err(StorageError::CorruptSegment { offset, .. })
                if offset == encode_record(OP_PUT, T, b"first", b"1").len()
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_segments_reports_damage_read_only() {
        let dir = tmp_dir("verify");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1");
            s.put(T, b"b", b"2");
            s.flush().unwrap();
        }
        let clean = verify_segments(&dir).unwrap();
        assert!(clean.ok());
        assert_eq!(clean.records, 2);
        // Note: open() leaves a fresh empty active segment behind.
        assert!(clean.segments >= 1);

        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        data[5] ^= 0xFF; // inside the first record's body
        fs::write(&seg, &data).unwrap();
        let report = verify_segments(&dir).unwrap();
        assert!(!report.ok());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].segment, seg);
        assert_eq!(report.records, 0, "parsing stops at the damaged record");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_segment_bytes_never_panics_on_garbage_shapes() {
        // Structured spot checks (the proptest fuzz lives in
        // tests/segment_fuzz.rs): empty, short, and header-lying inputs.
        assert_eq!(parse_segment_bytes(&[], |_, _, _, _| {}), SegmentEnd::Clean { records: 0 });
        assert!(matches!(
            parse_segment_bytes(&[1, 2, 3], |_, _, _, _| {}),
            SegmentEnd::TornTail { records: 0, offset: 0 }
        ));
        // A header claiming a huge value length must read as a torn tail,
        // not an allocation or a panic.
        let mut rec = Enc::new();
        rec.u32(0).u8(OP_PUT).u8(3).u32(4).u32(u32::MAX).bytes(b"keyy");
        assert!(matches!(
            parse_segment_bytes(rec.as_slice(), |_, _, _, _| {}),
            SegmentEnd::TornTail { .. }
        ));
    }

    #[test]
    fn empty_keys_and_values_roundtrip() {
        let dir = tmp_dir("empty");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"", b"");
            s.put(T, b"k", b"");
            s.flush().unwrap();
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"").unwrap().len(), 0);
        assert_eq!(s.get(T, b"k").unwrap().len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
