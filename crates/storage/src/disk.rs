//! Log-structured persistent store with a tiered immutable cold path.
//!
//! Every mutation is appended as one record to the active segment file. The
//! live state is two layers: an immutable base of sorted per-table **run
//! files** (see [`crate::run`]) written by [`DiskStore::compact`], plus an
//! in-memory [`DeltaState`] overlay holding every mutation since the last
//! compaction, rebuilt by replaying segments on open. Point reads fold the
//! delta over zero-copy slices of the resident run images; each run's
//! footer zone map (key range, trace-id range, time range) lets
//! [`DiskStore::key_may_exist`] prune whole runs without touching a row,
//! and lets retention ([`DiskStore::drop_expired_runs`]) drop a run whose
//! entire time range has expired instead of rewriting anything.
//!
//! This mirrors the storage Cassandra gives the paper — LSM runs fed by
//! sequential appends, point reads served from memory-resident structures —
//! at laptop scale, and keeps index persistence across the periodic update
//! runs of §3.1.3.
//!
//! ## Record format
//!
//! ```text
//! [crc32: u32 le][op: u8][table: u8][key_len: u32 le][val_len: u32 le][key][value]
//! ```
//!
//! `op`: 1 = put, 2 = append, 3 = delete (delete carries an empty value);
//! 4 = batch begin, 5 = batch commit (both carry table 0, an empty key, and
//! an 8-byte little-endian batch id); 6 = snapshot marker (table 0, empty
//! key, empty value). The checksum covers everything after itself.
//!
//! ## Batch framing
//!
//! [`KvStore::begin_batch`] writes a `batch begin` record; the batch's
//! mutations follow; [`KvStore::commit_batch`] writes the matching
//! `batch commit` and fsyncs per the [`DurabilityPolicy`]. Replay buffers
//! records between a begin and its commit and applies them only at the
//! commit — an uncommitted suffix (the tail a crash leaves behind) is
//! discarded, so recovery always lands on a committed-batch boundary.
//! A commit without its begin, a begin inside an open batch, or a snapshot
//! marker inside a batch cannot be produced by a crash and are reported as
//! corruption.
//!
//! ## Failure model
//!
//! A truncated trailing record (a torn write at crash) is ignored on
//! replay, but a record that is *followed by more data* and fails its
//! checksum — or carries an unknown op — is damage to acknowledged state:
//! [`DiskStore::open`] surfaces it as [`StorageError::CorruptSegment`]
//! instead of silently truncating replay. [`verify_segments`] runs the same
//! checks read-only over a store directory, for the cross-table auditor.
//!
//! Any failed write to the active segment leaves its tail in an unknown
//! state (appending more records after torn bytes would read as mid-segment
//! corruption), so the store flips to a sticky read-only *degraded* state:
//! further writes return [`StorageError::Degraded`], reads keep serving
//! from memory, and a restart recovers the durable committed prefix.
//!
//! ## Compaction and the manifest
//!
//! [`DiskStore::compact`] merges the runs and the delta into fresh sorted
//! run files (fsynced before they are referenced), then publishes them by
//! atomically replacing the `MANIFEST` (`.tmp` + fsync + rename + dir
//! fsync). The manifest's `segment_floor` is the first segment number
//! replay may apply: stale segments below the floor are superseded by the
//! runs and ignored, so a failed post-compaction sweep can never cause a
//! double replay. A crash mid-compaction leaves only orphan run files and
//! an ignored `MANIFEST.tmp`. Stores created before the run tier (segments
//! only, possibly headed by a legacy snapshot-marker record) open
//! unchanged: no manifest means an empty run set and full-log replay.

use crate::codec::{Dec, Enc};
use crate::crc::crc32;
use crate::error::StorageError;
use crate::kv::{Coverage, KvStore, TableId};
use crate::metrics::StoreMetrics;
use crate::run::{
    encode_run, read_manifest, run_file_name, write_manifest, DeltaOp, DeltaState, Manifest,
    ManifestRun, QuarantineSet, QuarantinedRun, RunReader, RunSet, ZoneExtractor,
};
use crate::vfs::{RealFs, RetryPolicy, RetryVfs, Vfs, VfsFile};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const OP_PUT: u8 = 1;
const OP_APPEND: u8 = 2;
const OP_DELETE: u8 = 3;
const OP_BATCH_BEGIN: u8 = 4;
const OP_BATCH_COMMIT: u8 = 5;
const OP_SNAPSHOT: u8 = 6;

/// When the store fsyncs the active segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityPolicy {
    /// Fsync after every record write. Slowest, smallest loss window.
    Always,
    /// Fsync once per committed batch (and on explicit `flush`). The
    /// default: a crash loses at most the uncommitted batch that replay
    /// discards anyway.
    #[default]
    Batch,
    /// Never fsync from the write path; only push userspace buffers to the
    /// OS at commit. A power failure may lose committed batches, a process
    /// crash does not.
    Os,
}

impl DurabilityPolicy {
    /// Parse a policy from its flag name (`always` / `batch` / `os`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "always" => Some(Self::Always),
            "batch" => Some(Self::Batch),
            "os" => Some(Self::Os),
            _ => None,
        }
    }

    /// The flag name of this policy.
    pub fn name(self) -> &'static str {
        match self {
            Self::Always => "always",
            Self::Batch => "batch",
            Self::Os => "os",
        }
    }
}

/// Options for [`DiskStore::open_with`].
#[derive(Debug, Clone)]
pub struct DiskOptions {
    /// Fsync policy of the write path.
    pub durability: DurabilityPolicy,
    /// Filesystem implementation (swap in [`crate::vfs::FaultFs`] to test).
    pub vfs: Arc<dyn Vfs>,
    /// Metrics handle for batch/fsync/degraded accounting.
    pub metrics: Option<Arc<StoreMetrics>>,
    /// Mutation bytes accumulated since the last compaction before
    /// [`DiskStore::maintain`] triggers one; `None` disables the
    /// size-triggered path entirely. The default (4 MiB) is far above what
    /// a single indexing batch writes, so maintenance only fires on
    /// genuinely grown stores.
    pub run_flush_bytes: Option<u64>,
    /// Transient-I/O retry policy: the store wraps `vfs` in a
    /// [`RetryVfs`], so interrupted-syscall-style failures are re-issued
    /// with bounded backoff instead of tripping the degraded fuse. `None`
    /// disables the wrapper (every failure surfaces immediately).
    pub retry: Option<RetryPolicy>,
    /// Keep superseded segments on disk after compaction instead of
    /// sweeping them. With the full segment history retained,
    /// [`DiskStore::repair`] can rebuild a quarantined run losslessly from
    /// the log; replay correctness is unaffected either way (the manifest's
    /// `segment_floor` keeps stale segments out of replay). Costs disk
    /// space proportional to total writes.
    pub retain_segments: bool,
}

impl Default for DiskOptions {
    fn default() -> Self {
        Self {
            durability: DurabilityPolicy::default(),
            vfs: Arc::new(RealFs),
            metrics: None,
            run_flush_bytes: Some(4 << 20),
            retry: Some(RetryPolicy::default()),
            retain_segments: false,
        }
    }
}

/// The two-layer live state: an immutable run base and the mutation delta
/// accumulated on top since the last compaction. Swapped atomically (both
/// `Arc`s under one `RwLock`) so a reader never observes a half-installed
/// tier — e.g. new runs that already contain a delta append *and* the delta
/// still holding it.
struct TierState {
    runs: Arc<RunSet>,
    delta: Arc<DeltaState>,
}

/// Persistent [`KvStore`] backed by append-only segment files and immutable
/// sorted runs in one directory.
pub struct DiskStore {
    dir: PathBuf,
    tier: RwLock<TierState>,
    vfs: Arc<dyn Vfs>,
    durability: DurabilityPolicy,
    metrics: Option<Arc<StoreMetrics>>,
    /// Sticky degraded reason. Lock order: `writer` before `tier` before
    /// `degraded`.
    degraded: Mutex<Option<String>>,
    next_batch: AtomicU64,
    writer: Mutex<Writer>,
    /// Schema-layer hook that derives trace/timestamp zones for run
    /// footers. Installed after open (the row formats are only known once
    /// the Meta table is readable), so compactions before installation
    /// write runs with key-range zones only.
    zone_extractor: RwLock<Option<Arc<dyn ZoneExtractor>>>,
    /// Mutation bytes logged since the last compaction (drives `maintain`).
    bytes_since_compact: AtomicU64,
    run_flush_bytes: Option<u64>,
    /// Next unused run id (mirrors the manifest; only written under the
    /// writer lock).
    next_run_id: AtomicU64,
    /// Current manifest `segment_floor` (0 for a store without a manifest).
    segment_floor: AtomicU64,
    /// Runs pulled from the searched set after failing verification (at
    /// open or during a scrub). Non-empty quarantine narrows coverage and
    /// blocks compaction/retention until [`DiskStore::repair`] rebuilds the
    /// tier. Lock order: after `writer` and `tier`.
    quarantine: Mutex<QuarantineSet>,
    /// Whether compaction's sweep keeps superseded segments as a repair
    /// log (see [`DiskOptions::retain_segments`]).
    retain_segments: bool,
}

struct Writer {
    file: Box<dyn VfsFile>,
    segment: u64,
    in_batch: Option<u64>,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore")
            .field("dir", &self.dir)
            .field("durability", &self.durability)
            .finish()
    }
}

fn segment_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("seg-{n:06}.log"))
}

/// Segment numbers present in `dir`, ascending. `.tmp` files a crashed
/// compaction may have left behind do not match and are ignored.
fn list_segments(vfs: &dyn Vfs, dir: &Path) -> io::Result<Vec<u64>> {
    let mut nums = Vec::new();
    for name in vfs.read_dir_names(dir)? {
        if let Some(num) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".log")) {
            if let Ok(n) = num.parse() {
                nums.push(n);
            }
        }
    }
    nums.sort_unstable();
    Ok(nums)
}

impl DiskStore {
    /// Open (or create) a store in `dir` with default options, replaying any
    /// existing segments.
    ///
    /// A truncated trailing record (torn write at crash) is tolerated and
    /// dropped, as is an uncommitted batch suffix; a checksum mismatch
    /// anywhere else fails the open with [`StorageError::CorruptSegment`] —
    /// replaying past damaged state would silently serve a wrong index.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        Self::open_with(dir, DiskOptions::default())
    }

    /// Open (or create) a store with an explicit durability policy, VFS and
    /// metrics handle.
    ///
    /// With a `MANIFEST` present, the referenced runs are loaded and fully
    /// verified, and only segments at or above the manifest's
    /// `segment_floor` are replayed into the delta. A referenced run that
    /// is damaged or unreadable does **not** fail the open: runs are
    /// derived state, so the store *quarantines* it — records it (reason +
    /// key-range coverage), serves reads from the survivors, reports
    /// [`Coverage::Narrowed`](crate::kv::Coverage) and refuses
    /// compaction/retention until [`DiskStore::repair`] rebuilds the tier.
    /// Without a manifest — a fresh directory or a store from before the
    /// run tier — every segment is replayed, including legacy
    /// snapshot-marker handling.
    pub fn open_with(dir: impl AsRef<Path>, options: DiskOptions) -> Result<Self, StorageError> {
        let DiskOptions { durability, vfs, metrics, run_flush_bytes, retry, retain_segments } =
            options;
        let vfs: Arc<dyn Vfs> = match retry {
            Some(policy) => {
                let wrapped = RetryVfs::with_policy(vfs, policy);
                if let Some(m) = &metrics {
                    wrapped.set_metrics(m.clone());
                }
                Arc::new(wrapped)
            }
            None => vfs,
        };
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)?;
        let manifest = read_manifest(vfs.as_ref(), &dir)?.unwrap_or_default();
        let mut readers = Vec::with_capacity(manifest.runs.len());
        let mut quarantine = QuarantineSet::new();
        for entry in &manifest.runs {
            let path = dir.join(run_file_name(entry.id, entry.table));
            // A referenced run that cannot be read or verified is damage to
            // acknowledged state (runs are fsynced before the manifest
            // names them), not a crash artifact — but it is *derived*
            // state, so quarantine it instead of failing the open.
            let (reason, key_range, records) =
                match RunReader::open(vfs.as_ref(), &path, entry.id, entry.table) {
                    Ok(r) if r.crc == entry.crc => {
                        readers.push(Arc::new(r));
                        continue;
                    }
                    Ok(r) => (
                        format!("manifest expects crc {:08x}, file has {:08x}", entry.crc, r.crc),
                        Some((r.zone.min_key.clone(), r.zone.max_key.clone())),
                        Some(r.zone.records),
                    ),
                    Err(StorageError::Io(e)) => {
                        (format!("referenced by manifest but unreadable: {e}"), None, None)
                    }
                    Err(StorageError::CorruptRun { reason, .. }) => (reason, None, None),
                    Err(e) => return Err(e),
                };
            quarantine.record(QuarantinedRun {
                id: entry.id,
                table: entry.table,
                path,
                reason,
                key_range,
                records,
            });
            if let Some(m) = &metrics {
                m.record_run_quarantined();
            }
        }
        if let Some(m) = &metrics {
            m.set_quarantined_live(quarantine.len());
        }
        let runs = RunSet::new(readers);
        let delta = DeltaState::new();
        let segments = list_segments(vfs.as_ref(), &dir)?;
        let mut next_batch = 0u64;
        for &n in &segments {
            if n < manifest.segment_floor {
                // Superseded by the runs (a sweep failed to remove it).
                continue;
            }
            let scan = replay_segment(vfs.as_ref(), &segment_path(&dir, n), &delta)?;
            if let Some(id) = scan.max_batch_id {
                next_batch = next_batch.max(id + 1);
            }
        }
        // The active segment is always a fresh file: appending to an
        // existing one could land records after a torn tail. Never reuse a
        // number below the floor.
        let next = segments.last().map_or(0, |n| n + 1).max(manifest.segment_floor);
        let file = vfs.open_append(&segment_path(&dir, next))?;
        if let Some(m) = &metrics {
            m.set_runs_live(runs.len());
        }
        Ok(Self {
            dir,
            tier: RwLock::new(TierState { runs: Arc::new(runs), delta: Arc::new(delta) }),
            vfs,
            durability,
            metrics,
            degraded: Mutex::new(None),
            next_batch: AtomicU64::new(next_batch),
            writer: Mutex::new(Writer { file, segment: next, in_batch: None }),
            zone_extractor: RwLock::new(None),
            bytes_since_compact: AtomicU64::new(0),
            run_flush_bytes,
            next_run_id: AtomicU64::new(manifest.next_run_id),
            segment_floor: AtomicU64::new(manifest.segment_floor),
            quarantine: Mutex::new(quarantine),
            retain_segments,
        })
    }

    /// Install the schema-layer hook that derives trace/timestamp zones for
    /// run footers (see [`ZoneExtractor`]). Runs written before
    /// installation carry key-range zones only.
    pub fn set_zone_extractor(&self, extractor: Arc<dyn ZoneExtractor>) {
        *self.zone_extractor.write() = Some(extractor);
    }

    /// Snapshot the current tier: the immutable run base and the delta
    /// overlay, consistent with each other.
    fn tier_snapshot(&self) -> (Arc<RunSet>, Arc<DeltaState>) {
        let t = self.tier.read();
        (t.runs.clone(), t.delta.clone())
    }

    /// The configured fsync policy.
    pub fn durability(&self) -> DurabilityPolicy {
        self.durability
    }

    fn degraded_reason(&self) -> Option<String> {
        self.degraded.lock().clone()
    }

    /// Flip the sticky degraded flag (first reason wins).
    fn enter_degraded(&self, reason: String) {
        let mut d = self.degraded.lock();
        if d.is_none() {
            if let Some(m) = &self.metrics {
                m.set_degraded(true);
            }
            *d = Some(reason);
        }
    }

    fn check_writable(&self) -> Result<(), StorageError> {
        match self.degraded_reason() {
            Some(reason) => Err(StorageError::Degraded { reason }),
            None => Ok(()),
        }
    }

    /// Append one record under the writer lock, honoring the `Always`
    /// fsync policy.
    fn write_record(&self, w: &mut Writer, rec: &[u8]) -> io::Result<()> {
        w.file.write_all(rec)?;
        if self.durability == DurabilityPolicy::Always {
            w.file.sync_all()?;
            if let Some(m) = &self.metrics {
                m.record_fsync();
            }
        }
        Ok(())
    }

    /// Log one mutation record and apply it to the delta, both under the
    /// writer lock — so a concurrent compaction can never snapshot a state
    /// missing a record the log already holds.
    fn log_apply(
        &self,
        op: u8,
        table: TableId,
        key: &[u8],
        value: &[u8],
    ) -> Result<(), StorageError> {
        self.check_writable()?;
        let rec = encode_record(op, table, key, value);
        let mut w = self.writer.lock();
        // Re-check under the writer lock: another writer may have failed
        // (and degraded the store) while we waited, and appending after its
        // torn bytes would read as mid-segment corruption on replay.
        self.check_writable()?;
        if let Err(e) = self.write_record(&mut w, &rec) {
            self.enter_degraded(format!("segment write failed: {e}"));
            return Err(StorageError::Io(e));
        }
        self.bytes_since_compact.fetch_add(rec.len() as u64, Ordering::Relaxed);
        let delta = self.tier.read().delta.clone();
        match op {
            OP_PUT => delta.record_put(table, key, value),
            OP_APPEND => delta.record_append(table, key, value),
            OP_DELETE => delta.record_delete(table, key),
            // log_apply is only called with mutation ops; control records
            // go through their own paths.
            _ => {}
        }
        Ok(())
    }

    /// Merge the runs and the delta into fresh sorted per-table run files,
    /// publish them through the manifest, and sweep everything they
    /// supersede. Concurrent writers are blocked for the duration.
    ///
    /// Crash-safe: the new runs are written whole and fsynced first (a
    /// crash leaves only orphan files replay ignores), then the manifest is
    /// atomically replaced (`.tmp` + fsync + rename + dir fsync) — *the
    /// rename is the commit point*. The manifest's `segment_floor` makes
    /// replay skip every pre-compaction segment, so recovery is correct
    /// with any subset of them still present: a remove failure during the
    /// sweep is collected and reported once, after the sweep finishes.
    pub fn compact(&self) -> io::Result<()> {
        let w = self.writer.lock();
        self.check_writable()?;
        if w.in_batch.is_some() {
            return Err(io::Error::other("cannot compact while a write batch is open"));
        }
        // Compacting while runs are quarantined would write a manifest
        // without them and sweep their files — silently finalizing the
        // data loss a repair could still undo. Refuse instead.
        if !self.quarantine.lock().is_empty() {
            return Err(io::Error::other(
                "cannot compact while runs are quarantined (the new manifest would finalize \
                 their data loss); run repair first",
            ));
        }
        let (runs, delta) = {
            let t = self.tier.read();
            (t.runs.clone(), t.delta.clone())
        };
        self.compact_locked(w, runs, delta)
    }

    /// Phases 1–3 of compaction over an explicit source image (`runs` +
    /// `delta`), under the writer guard the caller passes in. Shared by
    /// [`DiskStore::compact`] (current tier) and [`DiskStore::repair`]
    /// (rebuilt image); the guard is dropped before the phase-3 sweep so
    /// writers unblock as soon as the new tier is installed.
    fn compact_locked(
        &self,
        mut w: parking_lot::MutexGuard<'_, Writer>,
        runs: Arc<RunSet>,
        delta: Arc<DeltaState>,
    ) -> io::Result<()> {
        let old_active = w.segment;
        let floor = old_active + 1;
        let extractor = self.zone_extractor.read().clone();
        // Phase 1: merge and write the new runs, fsynced, unreferenced. A
        // failure here only leaves orphans a later sweep removes.
        let mut tables = runs.tables();
        for t in delta.tables() {
            if !tables.contains(&t) {
                tables.push(t);
            }
        }
        tables.sort_unstable();
        let first_id = self.next_run_id.load(Ordering::Relaxed);
        let mut new_entries: Vec<ManifestRun> = Vec::new();
        let mut run_bytes = 0u64;
        let written = (|| -> io::Result<()> {
            for &table in &tables {
                let mut image: BTreeMap<Vec<u8>, Bytes> = BTreeMap::new();
                for run in runs.for_table(table) {
                    for (key, value) in run.iter() {
                        image.insert(key.to_vec(), value);
                    }
                }
                for (key, op) in delta.entries_for(table) {
                    let key = key.into_vec();
                    match op {
                        DeltaOp::Put(v) => {
                            image.insert(key, Bytes::from(v));
                        }
                        DeltaOp::Delete => {
                            image.remove(&key);
                        }
                        DeltaOp::Append(tail) => {
                            let merged = match image.remove(&key) {
                                Some(base) => {
                                    let mut v = Vec::with_capacity(base.len() + tail.len());
                                    v.extend_from_slice(&base);
                                    v.extend_from_slice(&tail);
                                    v
                                }
                                None => tail,
                            };
                            image.insert(key, Bytes::from(merged));
                        }
                    }
                }
                let records: Vec<(Vec<u8>, Bytes)> = image.into_iter().collect();
                let Some((buf, _zone)) = encode_run(table, &records, extractor.as_deref())? else {
                    continue; // empty table: no run
                };
                let id = first_id + new_entries.len() as u64;
                let path = self.dir.join(run_file_name(id, table));
                let mut out = self.vfs.create(&path)?;
                out.write_all(&buf)?;
                out.sync_all()?;
                if let Some(m) = &self.metrics {
                    m.record_fsync();
                }
                run_bytes += buf.len() as u64;
                let crc_off = buf.len().saturating_sub(8);
                let crc = Dec::new(buf.get(crc_off..).unwrap_or(&[])).u32().unwrap_or(0);
                new_entries.push(ManifestRun { id, table, crc });
            }
            Ok(())
        })();
        if let Err(e) = written {
            for entry in &new_entries {
                let _ = self.vfs.remove_file(&self.dir.join(run_file_name(entry.id, entry.table)));
            }
            return Err(e);
        }
        // Phase 2: publish. Until the rename lands, replay still sees the
        // old manifest (or none) and the old segments — a crash anywhere
        // before this point changes nothing.
        let manifest = Manifest {
            segment_floor: floor,
            next_run_id: first_id + new_entries.len() as u64,
            runs: new_entries.clone(),
        };
        if let Err(e) = write_manifest(self.vfs.as_ref(), &self.dir, &manifest) {
            for entry in &new_entries {
                let _ = self.vfs.remove_file(&self.dir.join(run_file_name(entry.id, entry.table)));
            }
            return Err(e);
        }
        if let Some(m) = &self.metrics {
            m.record_fsync();
        }
        // Point of no return: the manifest supersedes every current
        // segment, so all further writes must land in a segment at or above
        // the floor. Failing to swap the writer would send them to a
        // segment replay now skips — degrade instead.
        match self.vfs.open_append(&segment_path(&self.dir, floor)) {
            Ok(file) => {
                w.file = file;
                w.segment = floor;
            }
            Err(e) => {
                self.enter_degraded(format!(
                    "compaction published a manifest but could not open a fresh active segment: {e}"
                ));
                return Err(e);
            }
        }
        // Install the new tier while writers are still blocked: the new
        // runs already contain every delta op, so the delta restarts empty.
        let mut readers = Vec::with_capacity(new_entries.len());
        for entry in &new_entries {
            let path = self.dir.join(run_file_name(entry.id, entry.table));
            match RunReader::open(self.vfs.as_ref(), &path, entry.id, entry.table) {
                Ok(r) => readers.push(Arc::new(r)),
                Err(e) => {
                    // We just wrote and fsynced this file; failing to read
                    // it back means the store can no longer serve its own
                    // state coherently.
                    self.enter_degraded(format!(
                        "compaction could not re-open its own run {}: {e}",
                        path.display()
                    ));
                    return Err(io::Error::other(e.to_string()));
                }
            }
        }
        let live = readers.len();
        *self.tier.write() =
            TierState { runs: Arc::new(RunSet::new(readers)), delta: Arc::new(DeltaState::new()) };
        self.next_run_id.store(manifest.next_run_id, Ordering::Relaxed);
        self.segment_floor.store(floor, Ordering::Relaxed);
        self.bytes_since_compact.store(0, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.record_run_compaction(live, run_bytes);
            m.set_runs_live(live);
        }
        drop(w);
        // Make the rename durable before deleting the data it replaces.
        self.vfs.sync_dir(&self.dir)?;
        // Phase 3: sweep superseded segments and orphan run files (from
        // this compaction's predecessors or crashed attempts). Failures are
        // collected so one bad unlink cannot abort the sweep halfway;
        // leftovers are harmless — the floor keeps stale segments out of
        // replay and orphan runs are never referenced. With
        // `retain_segments` the superseded segments are deliberately kept
        // as the repair log (replay still skips them via the floor).
        let mut failures: Vec<String> = Vec::new();
        if !self.retain_segments {
            match list_segments(self.vfs.as_ref(), &self.dir) {
                Ok(nums) => {
                    for n in nums {
                        if n < floor {
                            if let Err(e) = self.vfs.remove_file(&segment_path(&self.dir, n)) {
                                failures.push(format!("seg-{n:06}.log: {e}"));
                            }
                        }
                    }
                }
                Err(e) => failures.push(format!("listing segments: {e}")),
            }
        }
        match self.vfs.read_dir_names(&self.dir) {
            Ok(names) => {
                for name in names {
                    if crate::run::parse_run_file_name(&name).is_some()
                        && !new_entries.iter().any(|e| run_file_name(e.id, e.table) == name)
                    {
                        if let Err(e) = self.vfs.remove_file(&self.dir.join(&name)) {
                            failures.push(format!("{name}: {e}"));
                        }
                    }
                }
            }
            Err(e) => failures.push(format!("listing runs: {e}")),
        }
        if !failures.is_empty() {
            return Err(io::Error::other(format!(
                "compaction succeeded, but {} superseded file(s) could not be removed \
                 (replay stays correct with them present): {}",
                failures.len(),
                failures.join("; ")
            )));
        }
        Ok(())
    }

    /// Drop every run whose entire time range lies before `cutoff_ts` —
    /// retention without rewriting a byte of surviving data. Runs without
    /// trace/timestamp zones (no [`ZoneExtractor`] at compaction time, or
    /// undecodable rows) are conservatively kept. Returns how many runs
    /// were dropped.
    ///
    /// Note: delta appends whose run base is dropped keep only their tail;
    /// callers expire data only along boundaries the schema layer aligns
    /// with its partitions, where no live delta overlaps expired runs.
    pub fn drop_expired_runs(&self, cutoff_ts: u64) -> io::Result<usize> {
        let w = self.writer.lock();
        self.check_writable()?;
        if w.in_batch.is_some() {
            return Err(io::Error::other("cannot expire runs while a write batch is open"));
        }
        // Same guard as compaction: rewriting the manifest without the
        // quarantined runs would silently finalize their data loss.
        if !self.quarantine.lock().is_empty() {
            return Err(io::Error::other(
                "cannot expire runs while runs are quarantined; run repair first",
            ));
        }
        let (runs, delta) = {
            let t = self.tier.read();
            (t.runs.clone(), t.delta.clone())
        };
        let (dropped, kept): (Vec<_>, Vec<_>) = runs
            .runs()
            .iter()
            .cloned()
            .partition(|r| r.zone.zones.is_some_and(|z| z.ts_max < cutoff_ts));
        if dropped.is_empty() {
            return Ok(0);
        }
        let manifest = Manifest {
            segment_floor: self.segment_floor.load(Ordering::Relaxed),
            next_run_id: self.next_run_id.load(Ordering::Relaxed),
            runs: kept
                .iter()
                .map(|r| ManifestRun { id: r.id, table: r.table, crc: r.crc })
                .collect(),
        };
        write_manifest(self.vfs.as_ref(), &self.dir, &manifest)?;
        let expired = dropped.len();
        let live = kept.len();
        *self.tier.write() = TierState { runs: Arc::new(RunSet::new(kept)), delta };
        if let Some(m) = &self.metrics {
            m.record_fsync();
            m.record_runs_expired(expired);
            m.set_runs_live(live);
        }
        drop(w);
        // Make the manifest rename durable before unlinking the runs it
        // stopped referencing; an unlink failure leaves an orphan the next
        // compaction sweeps.
        self.vfs.sync_dir(&self.dir)?;
        let mut failures: Vec<String> = Vec::new();
        for r in &dropped {
            if let Err(e) = self.vfs.remove_file(&r.path) {
                failures.push(format!("{}: {e}", r.path.display()));
            }
        }
        if !failures.is_empty() {
            return Err(io::Error::other(format!(
                "retention dropped {expired} run(s), but {} file(s) could not be removed \
                 (they are unreferenced orphans): {}",
                failures.len(),
                failures.join("; ")
            )));
        }
        Ok(expired)
    }

    /// `(earliest ts_min, latest ts_max)` across all runs that carry
    /// trace/timestamp zones, or `None` if no run does. The retention CLI
    /// anchors its TTL cutoff at the latest timestamp.
    pub fn run_time_range(&self) -> Option<(u64, u64)> {
        let (runs, _) = self.tier_snapshot();
        let mut range: Option<(u64, u64)> = None;
        for r in runs.runs() {
            if let Some(z) = r.zone.zones {
                range = Some(match range {
                    Some((lo, hi)) => (lo.min(z.ts_min), hi.max(z.ts_max)),
                    None => (z.ts_min, z.ts_max),
                });
            }
        }
        range
    }

    /// Number of segment files currently on disk.
    pub fn num_segments(&self) -> io::Result<usize> {
        Ok(list_segments(self.vfs.as_ref(), &self.dir)?.len())
    }

    /// Number of live (manifest-referenced) runs.
    pub fn num_runs(&self) -> usize {
        self.tier_snapshot().0.len()
    }

    /// Mutation bytes logged since the last compaction.
    pub fn bytes_since_compact(&self) -> u64 {
        self.bytes_since_compact.load(Ordering::Relaxed)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of the current quarantine state: which runs were pulled
    /// from the searched set, why, and the key-range coverage lost.
    pub fn quarantine(&self) -> QuarantineSet {
        self.quarantine.lock().clone()
    }

    /// Pull run `(id, table)` from the searched tier and record the
    /// quarantine event. Returns `false` when the run is no longer live (a
    /// concurrent compaction or repair already superseded it — the damage
    /// is gone with it) or was already quarantined.
    fn quarantine_run(
        &self,
        id: u64,
        table: TableId,
        path: PathBuf,
        key_range: Option<(Vec<u8>, Vec<u8>)>,
        records: Option<u64>,
        reason: String,
    ) -> bool {
        // The writer lock serializes the tier swap against a concurrent
        // compaction installing a fresh tier (lock order: writer → tier →
        // quarantine).
        let _w = self.writer.lock();
        {
            let mut tier = self.tier.write();
            if !tier.runs.runs().iter().any(|r| r.id == id && r.table == table) {
                return false;
            }
            let kept: Vec<_> = tier
                .runs
                .runs()
                .iter()
                .filter(|r| !(r.id == id && r.table == table))
                .cloned()
                .collect();
            let live = kept.len();
            tier.runs = Arc::new(RunSet::new(kept));
            if let Some(m) = &self.metrics {
                m.set_runs_live(live);
            }
        }
        let mut q = self.quarantine.lock();
        let new = q.record(QuarantinedRun { id, table, path, reason, key_range, records });
        if new {
            if let Some(m) = &self.metrics {
                m.record_run_quarantined();
                m.set_quarantined_live(q.len());
            }
        }
        new
    }

    /// One verification pass over the live run tier: re-read every run
    /// file from disk and re-validate its full structure and CRC —
    /// catching bit rot that happened *after* the resident image was
    /// loaded. A run that no longer verifies is quarantined; reads
    /// continue against the survivors. `pause` sleeps between files to
    /// pace the I/O (the background scrubber passes a non-zero pause so a
    /// scrub never monopolizes the disk).
    pub fn scrub_paced(&self, pause: Duration) -> ScrubOutcome {
        let (runs, _) = self.tier_snapshot();
        let mut newly = 0usize;
        for run in runs.runs() {
            let verdict = match RunReader::open(self.vfs.as_ref(), &run.path, run.id, run.table) {
                Ok(fresh) if fresh.crc == run.crc => None,
                Ok(fresh) => Some(format!(
                    "scrub: file crc {:08x} no longer matches the loaded run's crc {:08x}",
                    fresh.crc, run.crc
                )),
                Err(e) => Some(format!("scrub: {e}")),
            };
            if let Some(reason) = verdict {
                let key_range = Some((run.zone.min_key.clone(), run.zone.max_key.clone()));
                if self.quarantine_run(
                    run.id,
                    run.table,
                    run.path.clone(),
                    key_range,
                    Some(run.zone.records),
                    reason,
                ) {
                    newly += 1;
                }
            }
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
        }
        if let Some(m) = &self.metrics {
            m.record_scrub_pass();
        }
        ScrubOutcome { runs_checked: runs.len(), newly_quarantined: newly }
    }

    /// [`DiskStore::scrub_paced`] without I/O pacing.
    pub fn scrub(&self) -> ScrubOutcome {
        self.scrub_paced(Duration::ZERO)
    }

    /// Rebuild the run tier after quarantine events, re-publishing through
    /// the crash-consistent manifest rename. No-op when nothing is
    /// quarantined.
    ///
    /// When the complete segment history is on disk (the store ran with
    /// [`DiskOptions::retain_segments`], or never compacted since the
    /// damaged runs were written), the tier is rebuilt **losslessly** by
    /// replaying every segment from the beginning — the quarantined runs'
    /// contents are re-derived from the log. The surviving runs are
    /// deliberately *not* used as a base in that path: their contents are
    /// already in the below-floor segments, and overlaying a full replay
    /// on them would double-apply appends.
    ///
    /// Without the full history, the tier is rebuilt from the surviving
    /// runs plus the live delta: integrity is restored and coverage
    /// returns to `Full`, but rows only the damaged files held are lost
    /// (bounded by the quarantined runs' record counts).
    pub fn repair(&self) -> io::Result<RepairOutcome> {
        let mut w = self.writer.lock();
        self.check_writable()?;
        if w.in_batch.is_some() {
            return Err(io::Error::other("cannot repair while a write batch is open"));
        }
        if self.quarantine.lock().is_empty() {
            return Ok(RepairOutcome { repaired: 0, full_history: false });
        }
        // Push buffered bytes of the active segment to the kernel so a
        // full-log read-back sees every record logged so far.
        w.file.flush()?;
        let segments = list_segments(self.vfs.as_ref(), &self.dir)?;
        let full_history = segments.first() == Some(&0)
            && segments.last().is_some_and(|&last| segments.len() as u64 == last + 1);
        let (runs, delta) = if full_history {
            let fresh = DeltaState::new();
            for &n in &segments {
                replay_segment(self.vfs.as_ref(), &segment_path(&self.dir, n), &fresh)
                    .map_err(io::Error::from)?;
            }
            (Arc::new(RunSet::empty()), Arc::new(fresh))
        } else {
            let t = self.tier.read();
            (t.runs.clone(), t.delta.clone())
        };
        self.compact_locked(w, runs, delta)?;
        let repaired = {
            let mut q = self.quarantine.lock();
            let n = q.len();
            q.clear();
            n
        };
        if let Some(m) = &self.metrics {
            m.record_runs_repaired(repaired);
            m.set_quarantined_live(0);
        }
        Ok(RepairOutcome { repaired, full_history })
    }

    /// Spawn a background thread that runs [`DiskStore::scrub_paced`]
    /// every `interval`, pacing `pause` between run files. The thread
    /// stops when the returned handle is dropped or
    /// [`ScrubberHandle::stop`] is called (it checks for shutdown in
    /// ≤50ms slices, so stopping never waits out a whole interval).
    pub fn spawn_scrubber(
        store: Arc<DiskStore>,
        interval: Duration,
        pause: Duration,
    ) -> io::Result<ScrubberHandle> {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let thread =
            std::thread::Builder::new().name("seqdet-scrub".into()).spawn(move || loop {
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if flag.load(Ordering::Relaxed) {
                        return;
                    }
                    let step = (interval - slept).min(Duration::from_millis(50));
                    std::thread::sleep(step);
                    slept += step;
                }
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                store.scrub_paced(pause);
            })?;
        Ok(ScrubberHandle { stop, thread: Some(thread) })
    }
}

/// Outcome of one [`DiskStore::scrub`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// Live runs whose files were re-read and re-validated.
    pub runs_checked: usize,
    /// Runs this pass newly quarantined.
    pub newly_quarantined: usize,
}

/// Outcome of a [`DiskStore::repair`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Quarantine entries cleared by the rebuild.
    pub repaired: usize,
    /// Whether the complete segment history was available: `true` means
    /// the rebuild was lossless (full-log replay); `false` means the tier
    /// was rebuilt from the survivors and rows only the damaged runs held
    /// are gone.
    pub full_history: bool,
}

/// Handle to the background scrubber spawned by
/// [`DiskStore::spawn_scrubber`]. Dropping it stops and joins the thread.
#[derive(Debug)]
pub struct ScrubberHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ScrubberHandle {
    /// Stop the scrubber and wait for its thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ScrubberHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serialize one log record:
/// `[crc: u32 over the rest][op][table][key_len][val_len][key][value]`.
fn encode_record(op: u8, table: TableId, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut body = Enc::with_capacity(14 + key.len() + value.len());
    body.u8(op).u8(table.0).u32(key.len() as u32).u32(value.len() as u32).bytes(key).bytes(value);
    let mut rec = Enc::with_capacity(4 + body.len());
    rec.u32(crc32(body.as_slice())).bytes(body.as_slice());
    rec.into_vec()
}

/// First 8 bytes of `v` as a little-endian u64 (zero-padded; callers only
/// pass length-validated batch-id values).
fn le_u64(v: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    let n = v.len().min(8);
    b[..n].copy_from_slice(&v[..n]);
    u64::from_le_bytes(b)
}

/// How one pass over a segment's bytes ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentEnd {
    /// Every byte belonged to a whole, checksum-verified record.
    Clean {
        /// Number of records parsed.
        records: u64,
    },
    /// The final record is incomplete — the torn tail of a crashed write.
    /// Everything before `offset` was verified; the tail is dropped.
    TornTail {
        /// Records parsed before the tail.
        records: u64,
        /// Byte offset where the torn record starts.
        offset: usize,
    },
    /// A record failed verification with more data after it (or a verified
    /// record carries an unknown op or breaks the batch protocol). Nothing
    /// at or past `offset` can be trusted.
    Corrupt {
        /// Records parsed before the damage.
        records: u64,
        /// Byte offset of the damaged record.
        offset: usize,
        /// What failed to verify.
        reason: String,
    },
}

/// Parse the records of one segment, feeding each verified record to
/// `apply`. Never panics, whatever `data` holds — this is the surface the
/// decoder fuzz tests drive.
///
/// This is the *record-level* check (checksums, known ops, control-record
/// shapes); it does not interpret batch framing — records inside an
/// uncommitted batch still reach `apply`. Use [`replay_segment_bytes`] for
/// batch-aware replay.
pub fn parse_segment_bytes(
    data: &[u8],
    mut apply: impl FnMut(u8, TableId, &[u8], &[u8]),
) -> SegmentEnd {
    let mut d = Dec::new(data);
    let mut records = 0u64;
    loop {
        let offset = data.len() - d.remaining();
        if d.is_done() {
            return SegmentEnd::Clean { records };
        }
        let Some(stored_crc) = d.u32() else {
            return SegmentEnd::TornTail { records, offset };
        };
        let body_start = data.len() - d.remaining();
        let (Some(op), Some(table), Some(klen), Some(vlen)) = (d.u8(), d.u8(), d.u32(), d.u32())
        else {
            return SegmentEnd::TornTail { records, offset };
        };
        let (Some(key), Some(value)) = (d.bytes(klen as usize), d.bytes(vlen as usize)) else {
            return SegmentEnd::TornTail { records, offset };
        };
        let body_end = data.len() - d.remaining();
        if crc32(&data[body_start..body_end]) != stored_crc {
            return SegmentEnd::Corrupt { records, offset, reason: "checksum mismatch".into() };
        }
        match op {
            OP_PUT | OP_APPEND | OP_DELETE => {}
            OP_BATCH_BEGIN | OP_BATCH_COMMIT => {
                if table != 0 || klen != 0 || vlen != 8 {
                    return SegmentEnd::Corrupt {
                        records,
                        offset,
                        reason: "malformed batch control record".into(),
                    };
                }
            }
            OP_SNAPSHOT => {
                if table != 0 || klen != 0 || vlen != 0 {
                    return SegmentEnd::Corrupt {
                        records,
                        offset,
                        reason: "malformed snapshot record".into(),
                    };
                }
            }
            _ => {
                return SegmentEnd::Corrupt { records, offset, reason: format!("unknown op {op}") }
            }
        }
        apply(op, TableId(table), key, value);
        records += 1;
    }
}

/// Outcome of one batch-aware pass over a segment's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// How the byte-level parse ended. Batch-protocol violations (a commit
    /// without its begin, a begin inside an open batch, a snapshot marker
    /// inside a batch) surface here as [`SegmentEnd::Corrupt`].
    pub end: SegmentEnd,
    /// Batches whose begin *and* commit were replayed.
    pub batches_committed: u64,
    /// Uncommitted batch suffixes discarded (at most one: only the crash
    /// frontier may legitimately carry one).
    pub batches_discarded: u64,
    /// Highest batch id seen, if any batch records were present.
    pub max_batch_id: Option<u64>,
}

/// Records buffered while a batch is open: `(op, table, key, value)`.
type BufferedRecord = (u8, TableId, Vec<u8>, Vec<u8>);

/// Replay one segment's bytes with batch framing: records between a batch
/// begin and its commit are buffered and reach `apply` only when the commit
/// is seen; an uncommitted suffix is discarded (counted, not applied).
/// `apply` therefore sees only effective records: out-of-batch mutations,
/// committed-batch mutations, and snapshot markers. Never panics.
pub fn replay_segment_bytes(
    data: &[u8],
    mut apply: impl FnMut(u8, TableId, &[u8], &[u8]),
) -> SegmentScan {
    let mut pending: Option<(u64, Vec<BufferedRecord>)> = None;
    let mut committed = 0u64;
    let mut max_batch_id: Option<u64> = None;
    // (records before the violation, its byte offset, reason)
    let mut violation: Option<(u64, usize, String)> = None;
    let mut offset = 0usize;
    let mut processed = 0u64;
    let end = parse_segment_bytes(data, |op, table, key, value| {
        let rec_offset = offset;
        offset += 14 + key.len() + value.len();
        if violation.is_some() {
            return;
        }
        match op {
            OP_BATCH_BEGIN => {
                let id = le_u64(value);
                if let Some((open, _)) = &pending {
                    violation = Some((
                        processed,
                        rec_offset,
                        format!("batch {id} begins while batch {open} is uncommitted"),
                    ));
                    return;
                }
                max_batch_id = Some(max_batch_id.map_or(id, |m| m.max(id)));
                pending = Some((id, Vec::new()));
            }
            OP_BATCH_COMMIT => {
                let id = le_u64(value);
                match pending.take() {
                    Some((begin_id, buffered)) if begin_id == id => {
                        for (op, table, key, value) in buffered {
                            apply(op, table, &key, &value);
                        }
                        committed += 1;
                    }
                    Some((begin_id, _)) => {
                        violation = Some((
                            processed,
                            rec_offset,
                            format!("batch commit {id} does not match open batch {begin_id}"),
                        ));
                        return;
                    }
                    None => {
                        violation = Some((
                            processed,
                            rec_offset,
                            format!("batch commit {id} without a matching begin"),
                        ));
                        return;
                    }
                }
            }
            OP_SNAPSHOT => {
                if pending.is_some() {
                    violation = Some((
                        processed,
                        rec_offset,
                        "snapshot marker inside an open batch".into(),
                    ));
                    return;
                }
                apply(op, table, key, value);
            }
            _ => {
                if let Some((_, buffered)) = pending.as_mut() {
                    buffered.push((op, table, key.to_vec(), value.to_vec()));
                } else {
                    apply(op, table, key, value);
                }
            }
        }
        processed += 1;
    });
    let batches_discarded = u64::from(violation.is_none() && pending.is_some());
    let end = match violation {
        // A protocol violation always precedes any byte-level damage the
        // parser may also have found (parsing stops feeding records at the
        // first corrupt one), so it wins.
        Some((records, offset, reason)) => SegmentEnd::Corrupt { records, offset, reason },
        None => end,
    };
    SegmentScan { end, batches_committed: committed, batches_discarded, max_batch_id }
}

fn replay_segment(
    vfs: &dyn Vfs,
    path: &Path,
    delta: &DeltaState,
) -> Result<SegmentScan, StorageError> {
    let data = vfs.read(path)?;
    let scan = replay_segment_bytes(&data, |op, table, key, value| {
        match op {
            OP_PUT => delta.record_put(table, key, value),
            OP_APPEND => delta.record_append(table, key, value),
            OP_DELETE => delta.record_delete(table, key),
            // OP_SNAPSHOT: a legacy pre-manifest compaction marker — this
            // segment supersedes everything replayed so far. (Stores with a
            // manifest never contain one; their supersession is the
            // segment floor.)
            _ => delta.clear_all(),
        }
    });
    match &scan.end {
        SegmentEnd::Corrupt { offset, reason, .. } => Err(StorageError::CorruptSegment {
            segment: path.to_path_buf(),
            offset: *offset,
            reason: reason.clone(),
        }),
        _ => Ok(scan),
    }
}

/// One verification failure found by [`verify_segments`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentViolation {
    /// Segment file the damage lives in.
    pub segment: PathBuf,
    /// Byte offset of the damaged record.
    pub offset: usize,
    /// What failed to verify.
    pub reason: String,
}

/// Outcome of a read-only checksum pass over every segment of a store
/// directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentReport {
    /// Segment files inspected.
    pub segments: usize,
    /// Whole, checksum-verified records across all segments.
    pub records: u64,
    /// Torn tail records dropped (at most one per segment; only the crash
    /// frontier may legitimately carry one).
    pub torn_tails: usize,
    /// Write batches with both begin and commit present.
    pub batches_committed: u64,
    /// Uncommitted batch suffixes replay would discard.
    pub batches_discarded: u64,
    /// Damaged records (parsing stops at the first one per segment).
    pub violations: Vec<SegmentViolation>,
}

impl SegmentReport {
    /// True when every record of every segment verified.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verify the CRC (record structure and batch framing) of every segment in
/// `dir` without mutating or replaying anything. Damage is *collected*, not
/// failed on, so the auditor can report all broken segments at once.
pub fn verify_segments(dir: impl AsRef<Path>) -> Result<SegmentReport, StorageError> {
    let dir = dir.as_ref();
    let mut report = SegmentReport::default();
    for n in list_segments(&RealFs, dir)? {
        let path = segment_path(dir, n);
        let data = RealFs.read(&path)?;
        report.segments += 1;
        let scan = replay_segment_bytes(&data, |_, _, _, _| {});
        report.batches_committed += scan.batches_committed;
        report.batches_discarded += scan.batches_discarded;
        match scan.end {
            SegmentEnd::Clean { records } => report.records += records,
            SegmentEnd::TornTail { records, .. } => {
                report.records += records;
                report.torn_tails += 1;
            }
            SegmentEnd::Corrupt { records, offset, reason } => {
                report.records += records;
                report.violations.push(SegmentViolation { segment: path, offset, reason });
            }
        }
    }
    Ok(report)
}

impl KvStore for DiskStore {
    fn get(&self, table: TableId, key: &[u8]) -> Option<Bytes> {
        // Borrow the tier under the read guard rather than snapshotting:
        // point reads are the query hot path, and the two Arc clone/drop
        // pairs a snapshot costs are measurable there. Nothing below takes
        // another lock, so the guard scope stays leaf-level.
        let t = self.tier.read();
        let (runs, delta) = (&t.runs, &t.delta);
        match delta.get(table, key) {
            Some(DeltaOp::Put(v)) => Some(Bytes::from(v)),
            Some(DeltaOp::Delete) => None,
            Some(DeltaOp::Append(tail)) => match runs.get(table, key) {
                Some(base) => {
                    let mut v = Vec::with_capacity(base.len() + tail.len());
                    v.extend_from_slice(&base);
                    v.extend_from_slice(&tail);
                    Some(Bytes::from(v))
                }
                None => Some(Bytes::from(tail)),
            },
            // Absent from the delta: the run image is the value, zero-copy.
            None => runs.get(table, key),
        }
    }

    /// One-pass fused read for the query hot path: the zone-map membership
    /// check and the row fetch share a single guard scope and a single walk
    /// of the table's runs, where `key_may_exist` + `get` would search the
    /// tier twice. Run pruned/searched accounting matches `key_may_exist`:
    /// a delta hit answers without consulting the runs at all.
    fn get_checked(&self, table: TableId, key: &[u8]) -> Option<Bytes> {
        let t = self.tier.read();
        let (runs, delta) = (&t.runs, &t.delta);
        let metered_runs_get = || {
            runs.get_pruning(table, key, |covered| {
                if let Some(m) = &self.metrics {
                    if covered {
                        m.record_run_searched();
                    } else {
                        m.record_run_pruned();
                    }
                }
            })
        };
        match delta.get(table, key) {
            Some(DeltaOp::Put(v)) => Some(Bytes::from(v)),
            Some(DeltaOp::Delete) => None,
            Some(DeltaOp::Append(tail)) => match metered_runs_get() {
                Some(base) => {
                    let mut v = Vec::with_capacity(base.len() + tail.len());
                    v.extend_from_slice(&base);
                    v.extend_from_slice(&tail);
                    Some(Bytes::from(v))
                }
                None => Some(Bytes::from(tail)),
            },
            None => metered_runs_get(),
        }
    }

    fn put(&self, table: TableId, key: &[u8], value: &[u8]) -> Result<(), StorageError> {
        self.log_apply(OP_PUT, table, key, value)
    }

    fn append(&self, table: TableId, key: &[u8], value: &[u8]) -> Result<(), StorageError> {
        self.log_apply(OP_APPEND, table, key, value)
    }

    fn delete(&self, table: TableId, key: &[u8]) -> Result<bool, StorageError> {
        let existed = self.get(table, key).is_some();
        self.log_apply(OP_DELETE, table, key, &[])?;
        Ok(existed)
    }

    fn scan(&self, table: TableId) -> Vec<(Bytes, Bytes)> {
        let (runs, delta) = self.tier_snapshot();
        let mut image: BTreeMap<Box<[u8]>, Vec<u8>> = BTreeMap::new();
        for run in runs.for_table(table) {
            for (key, value) in run.iter() {
                image.insert(key.into(), value.to_vec());
            }
        }
        for (key, op) in delta.entries_for(table) {
            match op {
                DeltaOp::Put(v) => {
                    image.insert(key, v);
                }
                DeltaOp::Delete => {
                    image.remove(&key);
                }
                DeltaOp::Append(tail) => {
                    image.entry(key).or_default().extend_from_slice(&tail);
                }
            }
        }
        image.into_iter().map(|(k, v)| (Bytes::from(k.into_vec()), Bytes::from(v))).collect()
    }

    fn table_len(&self, table: TableId) -> usize {
        let (runs, delta) = self.tier_snapshot();
        let mut n: isize = runs.for_table(table).map(|r| r.len() as isize).sum();
        for (key, op) in delta.entries_for(table) {
            let in_run = runs.for_table(table).any(|r| r.contains(&key));
            match op {
                DeltaOp::Delete => {
                    if in_run {
                        n -= 1;
                    }
                }
                DeltaOp::Put(_) | DeltaOp::Append(_) => {
                    if !in_run {
                        n += 1;
                    }
                }
            }
        }
        n.max(0) as usize
    }

    fn flush(&self) -> io::Result<()> {
        let mut w = self.writer.lock();
        self.check_writable()?;
        if let Err(e) = w.file.sync_all() {
            self.enter_degraded(format!("flush failed: {e}"));
            return Err(e);
        }
        if let Some(m) = &self.metrics {
            m.record_fsync();
        }
        Ok(())
    }

    fn begin_batch(&self) -> Result<(), StorageError> {
        let mut w = self.writer.lock();
        self.check_writable()?;
        if let Some(open) = w.in_batch {
            return Err(StorageError::Io(io::Error::other(format!(
                "batch {open} is already open"
            ))));
        }
        let id = self.next_batch.fetch_add(1, Ordering::Relaxed);
        let rec = encode_record(OP_BATCH_BEGIN, TableId(0), b"", &id.to_le_bytes());
        if let Err(e) = self.write_record(&mut w, &rec) {
            self.enter_degraded(format!("batch begin write failed: {e}"));
            return Err(StorageError::Io(e));
        }
        w.in_batch = Some(id);
        Ok(())
    }

    fn commit_batch(&self) -> Result<(), StorageError> {
        let mut w = self.writer.lock();
        self.check_writable()?;
        let Some(id) = w.in_batch else {
            return Err(StorageError::Io(io::Error::other("no open batch to commit")));
        };
        let rec = encode_record(OP_BATCH_COMMIT, TableId(0), b"", &id.to_le_bytes());
        let result = (|| -> io::Result<()> {
            w.file.write_all(&rec)?;
            match self.durability {
                DurabilityPolicy::Always | DurabilityPolicy::Batch => {
                    w.file.sync_all()?;
                    if let Some(m) = &self.metrics {
                        m.record_fsync();
                    }
                }
                DurabilityPolicy::Os => w.file.flush()?,
            }
            Ok(())
        })();
        w.in_batch = None;
        match result {
            Ok(()) => {
                if let Some(m) = &self.metrics {
                    m.record_batch_commit();
                }
                Ok(())
            }
            Err(e) => {
                if let Some(m) = &self.metrics {
                    m.record_batch_abort();
                }
                self.enter_degraded(format!("batch commit failed: {e}"));
                Err(StorageError::Io(e))
            }
        }
    }

    fn abort_batch(&self) {
        let mut w = self.writer.lock();
        if w.in_batch.take().is_some() {
            if let Some(m) = &self.metrics {
                m.record_batch_abort();
            }
            // The memtable already applied part of the batch, but replay
            // will discard the whole uncommitted suffix: memory is ahead of
            // the durable committed prefix until a restart.
            self.enter_degraded(
                "write batch aborted mid-batch; in-memory state is ahead of the durable \
                 committed prefix"
                    .to_owned(),
            );
        }
    }

    fn degraded(&self) -> Option<String> {
        self.degraded_reason()
    }

    /// Zone-map pruning: a key outside every run's key range — and absent
    /// from the delta — is definitely not stored, without touching a row.
    /// Each run of the table counts as either pruned (zone excludes the
    /// key) or searched (zone covers it) in [`StoreMetrics`].
    fn key_may_exist(&self, table: TableId, key: &[u8]) -> bool {
        // Same guard-level borrow as `get`: this runs once per posting row
        // on the query read path.
        let t = self.tier.read();
        let (runs, delta) = (&t.runs, &t.delta);
        if runs.is_empty() {
            // No immutable tier yet (fresh or legacy store): no pruning
            // metadata exists, so every key may exist.
            return true;
        }
        if delta.contains(table, key) {
            return true;
        }
        let mut covered = false;
        for run in runs.for_table(table) {
            if run.zone.covers_key(key) {
                covered = true;
                if let Some(m) = &self.metrics {
                    m.record_run_searched();
                }
            } else if let Some(m) = &self.metrics {
                m.record_run_pruned();
            }
        }
        covered
    }

    /// Size-triggered compaction: once the mutation bytes logged since the
    /// last compaction exceed [`DiskOptions::run_flush_bytes`], fold them
    /// into fresh runs. Called by the indexer after each committed batch.
    fn maintain(&self) -> Result<(), StorageError> {
        let Some(limit) = self.run_flush_bytes else {
            return Ok(());
        };
        if self.bytes_since_compact.load(Ordering::Relaxed) < limit {
            return Ok(());
        }
        if !self.quarantine.lock().is_empty() {
            // Compaction is refused while runs are quarantined (the new
            // manifest would finalize their data loss). Maintenance just
            // waits for a repair instead of failing every committed batch.
            return Ok(());
        }
        self.compact().map_err(StorageError::Io)
    }

    fn coverage(&self) -> Coverage {
        // Clone out of the guard before deriving the answer: Coverage
        // construction happens with no store lock held.
        let quarantine = self.quarantine.lock().clone();
        quarantine.coverage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FaultFs;
    use std::fs;
    use std::io::Write;

    const T: TableId = TableId(3);

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seqdet-disk-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open_fault(dir: &Path, fault: &FaultFs) -> DiskStore {
        DiskStore::open_with(
            dir,
            DiskOptions { vfs: Arc::new(fault.clone()), ..DiskOptions::default() },
        )
        .unwrap()
    }

    #[test]
    fn basic_ops_behave_like_memstore() {
        let dir = tmp_dir("basic");
        let s = DiskStore::open(&dir).unwrap();
        s.put(T, b"k", b"v").unwrap();
        s.append(T, b"k", b"2").unwrap();
        assert_eq!(s.get(T, b"k").unwrap().as_ref(), b"v2");
        assert!(s.delete(T, b"k").unwrap());
        assert!(s.get(T, b"k").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn state_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1").unwrap();
            s.append(T, b"b", b"xy").unwrap();
            s.append(T, b"b", b"z").unwrap();
            s.put(T, b"gone", b"1").unwrap();
            s.delete(T, b"gone").unwrap();
            s.flush().unwrap();
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"xyz");
        assert!(s.get(T, b"gone").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_reduces_segments_and_preserves_state() {
        let dir = tmp_dir("compact");
        {
            let s = DiskStore::open(&dir).unwrap();
            for i in 0..50u32 {
                s.append(T, b"k", &i.to_le_bytes()).unwrap();
            }
            s.flush().unwrap();
        }
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"x", b"y").unwrap();
            s.flush().unwrap();
            assert!(s.num_segments().unwrap() >= 2);
            s.compact().unwrap();
            // The state now lives in runs; only the fresh active segment
            // remains.
            assert_eq!(s.num_segments().unwrap(), 1);
            assert_eq!(s.num_runs(), 1);
            assert_eq!(s.get(T, b"k").unwrap().len(), 200);
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"k").unwrap().len(), 200);
        assert_eq!(s.get(T, b"x").unwrap().as_ref(), b"y");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_after_compaction_survive_reopen() {
        let dir = tmp_dir("post-compact");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1").unwrap();
            s.compact().unwrap();
            s.put(T, b"b", b"2").unwrap();
            s.flush().unwrap();
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_record_is_ignored() {
        let dir = tmp_dir("torn");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"good", b"1").unwrap();
            s.flush().unwrap();
        }
        // Corrupt: append half a record to the first segment.
        let seg = segment_path(&dir, 0);
        let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0xAA, 0xBB, 0xCC, 0xDD, OP_PUT, 3, 10, 0, 0, 0]).unwrap(); // torn record
        drop(f);
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"good").unwrap().as_ref(), b"1");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_fails_open_with_corrupt_segment() {
        let dir = tmp_dir("crc");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"first", b"1").unwrap();
            s.put(T, b"second", b"2").unwrap();
            s.flush().unwrap();
        }
        // Flip one bit inside the FIRST record's value: the damage sits
        // mid-segment (more data follows), so open must refuse rather than
        // silently truncate replay.
        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        let first_len = encode_record(OP_PUT, T, b"first", b"1").len();
        data[first_len - 1] ^= 0x01;
        fs::write(&seg, &data).unwrap();
        match DiskStore::open(&dir) {
            Err(StorageError::CorruptSegment { segment, offset, reason }) => {
                assert_eq!(segment, seg);
                assert_eq!(offset, 0);
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected CorruptSegment, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_final_record_also_fails_open() {
        // A checksum mismatch in the *last* record is still corruption (the
        // record is whole — a torn write cannot produce it), so open fails.
        let dir = tmp_dir("crc-tail");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"first", b"1").unwrap();
            s.put(T, b"second", b"2").unwrap();
            s.flush().unwrap();
        }
        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        let len = data.len();
        data[len - 1] ^= 0x01;
        fs::write(&seg, &data).unwrap();
        assert!(matches!(
            DiskStore::open(&dir),
            Err(StorageError::CorruptSegment { offset, .. })
                if offset == encode_record(OP_PUT, T, b"first", b"1").len()
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_segments_reports_damage_read_only() {
        let dir = tmp_dir("verify");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1").unwrap();
            s.put(T, b"b", b"2").unwrap();
            s.flush().unwrap();
        }
        let clean = verify_segments(&dir).unwrap();
        assert!(clean.ok());
        assert_eq!(clean.records, 2);
        // Note: open() leaves a fresh empty active segment behind.
        assert!(clean.segments >= 1);

        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        data[5] ^= 0xFF; // inside the first record's body
        fs::write(&seg, &data).unwrap();
        let report = verify_segments(&dir).unwrap();
        assert!(!report.ok());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].segment, seg);
        assert_eq!(report.records, 0, "parsing stops at the damaged record");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_segment_bytes_never_panics_on_garbage_shapes() {
        // Structured spot checks (the proptest fuzz lives in
        // tests/segment_fuzz.rs): empty, short, and header-lying inputs.
        assert_eq!(parse_segment_bytes(&[], |_, _, _, _| {}), SegmentEnd::Clean { records: 0 });
        assert!(matches!(
            parse_segment_bytes(&[1, 2, 3], |_, _, _, _| {}),
            SegmentEnd::TornTail { records: 0, offset: 0 }
        ));
        // A header claiming a huge value length must read as a torn tail,
        // not an allocation or a panic.
        let mut rec = Enc::new();
        rec.u32(0).u8(OP_PUT).u8(3).u32(4).u32(u32::MAX).bytes(b"keyy");
        assert!(matches!(
            parse_segment_bytes(rec.as_slice(), |_, _, _, _| {}),
            SegmentEnd::TornTail { .. }
        ));
    }

    #[test]
    fn empty_keys_and_values_roundtrip() {
        let dir = tmp_dir("empty");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"", b"").unwrap();
            s.put(T, b"k", b"").unwrap();
            s.flush().unwrap();
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"").unwrap().len(), 0);
        assert_eq!(s.get(T, b"k").unwrap().len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn committed_batch_survives_reopen() {
        let dir = tmp_dir("batch-commit");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.begin_batch().unwrap();
            s.put(T, b"x", b"1").unwrap();
            s.append(T, b"y", b"2").unwrap();
            s.commit_batch().unwrap();
        }
        let report = verify_segments(&dir).unwrap();
        assert!(report.ok());
        assert_eq!(report.batches_committed, 1);
        assert_eq!(report.batches_discarded, 0);
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"x").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"y").unwrap().as_ref(), b"2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_batch_suffix_is_discarded_on_reopen() {
        let dir = tmp_dir("batch-discard");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"keep", b"1").unwrap();
            s.begin_batch().unwrap();
            s.put(T, b"lost-a", b"x").unwrap();
            s.put(T, b"lost-b", b"y").unwrap();
            // No commit: simulate a crash by forcing bytes out without one.
            // (Dropping the store flushes the buffered writer.)
        }
        let report = verify_segments(&dir).unwrap();
        assert!(report.ok());
        assert_eq!(report.batches_discarded, 1);
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"keep").unwrap().as_ref(), b"1");
        assert!(s.get(T, b"lost-a").is_none());
        assert!(s.get(T, b"lost-b").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_ids_keep_growing_across_reopen() {
        let dir = tmp_dir("batch-ids");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.begin_batch().unwrap();
            s.put(T, b"a", b"1").unwrap();
            s.commit_batch().unwrap();
        }
        {
            let s = DiskStore::open(&dir).unwrap();
            assert_eq!(s.next_batch.load(Ordering::Relaxed), 1);
            s.begin_batch().unwrap();
            s.put(T, b"b", b"2").unwrap();
            s.commit_batch().unwrap();
        }
        let report = verify_segments(&dir).unwrap();
        assert_eq!(report.batches_committed, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nested_begin_and_stray_commit_are_refused() {
        let dir = tmp_dir("batch-misuse");
        let s = DiskStore::open(&dir).unwrap();
        assert!(s.commit_batch().is_err(), "commit without begin");
        s.begin_batch().unwrap();
        assert!(s.begin_batch().is_err(), "nested begin");
        s.commit_batch().unwrap();
        assert!(s.degraded().is_none(), "misuse errors must not degrade the store");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_commit_record_fails_open_as_corruption() {
        let dir = tmp_dir("stray-commit");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1").unwrap();
            s.flush().unwrap();
        }
        let seg = segment_path(&dir, 0);
        let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&encode_record(OP_BATCH_COMMIT, TableId(0), b"", &7u64.to_le_bytes())).unwrap();
        drop(f);
        match DiskStore::open(&dir) {
            Err(StorageError::CorruptSegment { offset, reason, .. }) => {
                assert_eq!(offset, encode_record(OP_PUT, T, b"a", b"1").len());
                assert!(reason.contains("without a matching begin"), "{reason}");
            }
            other => panic!("expected CorruptSegment, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_marker_clears_earlier_segments() {
        let dir = tmp_dir("snapshot-marker");
        fs::create_dir_all(&dir).unwrap();
        // Hand-build the post-compaction layout with a stale old segment
        // still present (as if the sweep crashed before removing it).
        let mut seg0 = Vec::new();
        seg0.extend_from_slice(&encode_record(OP_PUT, T, b"stale", b"old"));
        seg0.extend_from_slice(&encode_record(OP_PUT, T, b"k", b"old"));
        fs::write(segment_path(&dir, 0), &seg0).unwrap();
        let mut seg1 = Vec::new();
        seg1.extend_from_slice(&encode_record(OP_SNAPSHOT, TableId(0), b"", b""));
        seg1.extend_from_slice(&encode_record(OP_PUT, T, b"k", b"new"));
        fs::write(segment_path(&dir, 1), &seg1).unwrap();
        let s = DiskStore::open(&dir).unwrap();
        assert!(s.get(T, b"stale").is_none(), "snapshot must clear earlier segments");
        assert_eq!(s.get(T, b"k").unwrap().as_ref(), b"new");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_snapshot_is_ignored_on_open() {
        let dir = tmp_dir("tmp-ignored");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1").unwrap();
            s.flush().unwrap();
        }
        // A crashed compaction leaves a .tmp file behind; it must be
        // invisible to replay (its content could be anything).
        fs::write(dir.join("seg-000099.log.tmp"), b"half-written garbage").unwrap();
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_failure_degrades_store_but_reads_survive() {
        let dir = tmp_dir("degrade");
        let fault = FaultFs::new();
        let s = open_fault(&dir, &fault);
        s.put(T, b"a", b"1").unwrap();
        fault.arm_fail_after_writes(0);
        let err = s.put(T, b"b", b"2").unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "first failure is the I/O error: {err}");
        // Sticky: later writes are refused as Degraded, even though the
        // injected fault has passed.
        fault.heal();
        assert!(s.put(T, b"c", b"3").unwrap_err().is_degraded());
        assert!(s.append(T, b"a", b"x").unwrap_err().is_degraded());
        assert!(s.delete(T, b"a").unwrap_err().is_degraded());
        assert!(s.begin_batch().unwrap_err().is_degraded());
        assert!(s.flush().is_err());
        assert!(s.compact().is_err());
        assert!(s.degraded().unwrap().contains("segment write failed"));
        // Reads keep serving the pre-failure state; the failed write was
        // not applied to memory.
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert!(s.get(T, b"b").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_batch_degrades_and_reopen_recovers_committed_prefix() {
        let dir = tmp_dir("abort");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.begin_batch().unwrap();
            s.put(T, b"committed", b"1").unwrap();
            s.commit_batch().unwrap();
            s.begin_batch().unwrap();
            s.put(T, b"half", b"x").unwrap();
            s.abort_batch();
            // Memory is ahead of the durable committed prefix: degraded.
            assert!(s.degraded().is_some());
            assert!(s.put(T, b"later", b"y").unwrap_err().is_degraded());
            // The aborted batch's write is still visible in memory…
            assert_eq!(s.get(T, b"half").unwrap().as_ref(), b"x");
        }
        // …but a restart lands on the committed-batch boundary.
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"committed").unwrap().as_ref(), b"1");
        assert!(s.get(T, b"half").is_none());
        assert!(s.degraded().is_none(), "a reopened store starts healthy");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_is_refused_mid_batch() {
        let dir = tmp_dir("compact-mid-batch");
        let s = DiskStore::open(&dir).unwrap();
        s.begin_batch().unwrap();
        s.put(T, b"a", b"1").unwrap();
        assert!(s.compact().is_err());
        s.commit_batch().unwrap();
        s.compact().unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_sweep_tolerates_remove_failures() {
        let dir = tmp_dir("compact-sweep");
        let fault = FaultFs::new();
        {
            let s = open_fault(&dir, &fault);
            s.put(T, b"a", b"1").unwrap();
            s.flush().unwrap();
        }
        let s = open_fault(&dir, &fault);
        s.put(T, b"b", b"2").unwrap();
        // Every remove in the sweep fails; compaction must still finish,
        // publish the snapshot, and report the failures once.
        fault.arm_fail_after_removes(0);
        let err = s.compact().unwrap_err();
        assert!(err.to_string().contains("could not be removed"), "{err}");
        assert!(s.degraded().is_none(), "leftover old segments are harmless");
        // Writes keep working and land after the snapshot.
        fault.heal();
        s.put(T, b"c", b"3").unwrap();
        s.flush().unwrap();
        drop(s);
        // Replay with the old segments still present is correct thanks to
        // the snapshot marker.
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"2");
        assert_eq!(s.get(T, b"c").unwrap().as_ref(), b"3");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_emits_runs_and_manifest_and_reopen_serves_from_runs() {
        let dir = tmp_dir("runs-roundtrip");
        let t2 = TableId(7);
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1").unwrap();
            s.append(T, b"b", b"xy").unwrap();
            s.append(T, b"b", b"z").unwrap();
            s.put(t2, b"other", b"table").unwrap();
            s.compact().unwrap();
            assert_eq!(s.num_runs(), 2, "one run per non-empty table");
            assert_eq!(s.bytes_since_compact(), 0);
            // Post-compact reads serve from the runs.
            assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"xyz");
            assert_eq!(s.get(t2, b"other").unwrap().as_ref(), b"table");
            assert_eq!(s.table_len(T), 2);
        }
        let report = crate::run::verify_runs(&RealFs, &dir).unwrap();
        assert!(report.ok(), "{report:?}");
        assert_eq!(report.runs, 2);
        assert_eq!(report.records, 3);
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.num_runs(), 2);
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"xyz");
        assert_eq!(s.get(t2, b"other").unwrap().as_ref(), b"table");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_sweep_failure_cannot_double_replay() {
        // Regression guard for the error-sweep path: a compaction that
        // publishes its manifest but fails to unlink the old segments must
        // not replay those segments again on reopen — an append replayed on
        // top of the run holding the same bytes would double the value.
        let dir = tmp_dir("no-double-replay");
        let fault = FaultFs::new();
        let s = open_fault(&dir, &fault);
        s.append(T, b"k", b"ab").unwrap();
        s.append(T, b"k", b"cd").unwrap();
        s.flush().unwrap();
        fault.arm_fail_after_removes(0);
        let err = s.compact().unwrap_err();
        assert!(err.to_string().contains("could not be removed"), "{err}");
        assert!(s.degraded().is_none());
        assert_eq!(s.get(T, b"k").unwrap().as_ref(), b"abcd");
        fault.heal();
        drop(s);
        // The stale segment with both append records is still on disk
        // alongside the run; the manifest's segment floor must keep it out
        // of replay.
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(
            s.get(T, b"k").unwrap().as_ref(),
            b"abcd",
            "stale pre-compaction segment was replayed on top of the runs"
        );
        assert_eq!(s.table_len(T), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_over_runs_folds_mutations_across_compactions() {
        let dir = tmp_dir("delta-fold");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.append(T, b"grow", b"base").unwrap();
            s.put(T, b"gone", b"soon").unwrap();
            s.put(T, b"stay", b"1").unwrap();
            s.compact().unwrap();
            // Mutate on top of the runs: append to a run row, delete a run
            // row, overwrite a run row, create a fresh row.
            s.append(T, b"grow", b"+tail").unwrap();
            s.delete(T, b"gone").unwrap();
            s.put(T, b"stay", b"2").unwrap();
            s.put(T, b"new", b"row").unwrap();
            assert_eq!(s.get(T, b"grow").unwrap().as_ref(), b"base+tail");
            assert!(s.get(T, b"gone").is_none());
            assert_eq!(s.table_len(T), 3);
            s.flush().unwrap();
        }
        // Reopen replays the delta from the post-compaction segment.
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"grow").unwrap().as_ref(), b"base+tail");
        assert!(s.get(T, b"gone").is_none());
        assert_eq!(s.get(T, b"stay").unwrap().as_ref(), b"2");
        assert_eq!(s.get(T, b"new").unwrap().as_ref(), b"row");
        // A second compaction folds the delta into fresh runs.
        s.compact().unwrap();
        assert_eq!(s.get(T, b"grow").unwrap().as_ref(), b"base+tail");
        assert_eq!(s.table_len(T), 3);
        let scanned = s.scan(T);
        assert_eq!(scanned.len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_may_exist_prunes_by_zone_map() {
        let dir = tmp_dir("zone-prune");
        let metrics = Arc::new(StoreMetrics::new());
        let s = DiskStore::open_with(
            &dir,
            DiskOptions { metrics: Some(metrics.clone()), ..DiskOptions::default() },
        )
        .unwrap();
        // Before any run exists there is no pruning metadata.
        assert!(s.key_may_exist(T, b"anything"));
        s.put(T, b"m-key-1", b"1").unwrap();
        s.put(T, b"m-key-5", b"5").unwrap();
        s.compact().unwrap();
        // Inside the zone: the run must be consulted.
        assert!(s.key_may_exist(T, b"m-key-1"));
        assert!(s.key_may_exist(T, b"m-key-3"), "absent but zone-covered: may exist");
        assert_eq!(metrics.runs_searched(), 2);
        // Outside the zone on both sides: definitively absent.
        assert!(!s.key_may_exist(T, b"a-before"));
        assert!(!s.key_may_exist(T, b"z-after"));
        assert_eq!(metrics.runs_pruned(), 2);
        // Fresh delta writes are always visible.
        s.put(T, b"z-after", b"now").unwrap();
        assert!(s.key_may_exist(T, b"z-after"));
        // A table with no runs and no delta rows holds nothing.
        assert!(!s.key_may_exist(TableId(99), b"m-key-1"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn get_checked_fuses_pruning_with_the_read() {
        let dir = tmp_dir("get-checked");
        let metrics = Arc::new(StoreMetrics::new());
        let s = DiskStore::open_with(
            &dir,
            DiskOptions { metrics: Some(metrics.clone()), ..DiskOptions::default() },
        )
        .unwrap();
        s.put(T, b"m-key-1", b"1").unwrap();
        s.put(T, b"m-key-5", b"5").unwrap();
        s.compact().unwrap();
        // A covered hit and a covered miss each search the run once.
        assert_eq!(s.get_checked(T, b"m-key-1").unwrap().as_ref(), b"1");
        assert!(s.get_checked(T, b"m-key-3").is_none());
        assert_eq!(metrics.runs_searched(), 2);
        // Outside the zone: the run's row index is never consulted.
        assert!(s.get_checked(T, b"a-before").is_none());
        assert!(s.get_checked(T, b"z-after").is_none());
        assert_eq!(metrics.runs_pruned(), 2);
        // Delta ops shadow and extend the run image without run accounting,
        // matching `key_may_exist`'s delta fast path.
        s.put(T, b"m-key-1", b"new").unwrap();
        s.append(T, b"m-key-5", b"+tail").unwrap();
        let (searched, pruned) = (metrics.runs_searched(), metrics.runs_pruned());
        assert_eq!(s.get_checked(T, b"m-key-1").unwrap().as_ref(), b"new");
        assert_eq!(metrics.runs_searched(), searched, "delta Put answers without the runs");
        assert_eq!(s.get_checked(T, b"m-key-5").unwrap().as_ref(), b"5+tail");
        assert_eq!(metrics.runs_searched(), searched + 1, "Append merges over the run image");
        assert_eq!(metrics.runs_pruned(), pruned);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn maintain_compacts_once_over_the_byte_threshold() {
        let dir = tmp_dir("maintain");
        let s = DiskStore::open_with(
            &dir,
            DiskOptions { run_flush_bytes: Some(64), ..DiskOptions::default() },
        )
        .unwrap();
        s.maintain().unwrap();
        assert_eq!(s.num_runs(), 0, "below the threshold: no compaction");
        for i in 0..8u32 {
            s.append(T, b"k", &i.to_le_bytes()).unwrap();
        }
        assert!(s.bytes_since_compact() > 64);
        s.maintain().unwrap();
        assert_eq!(s.num_runs(), 1, "over the threshold: compacted into a run");
        assert_eq!(s.bytes_since_compact(), 0);
        assert_eq!(s.get(T, b"k").unwrap().len(), 32);
        // Disabled maintenance never compacts.
        let dir2 = tmp_dir("maintain-off");
        let s2 = DiskStore::open_with(
            &dir2,
            DiskOptions { run_flush_bytes: None, ..DiskOptions::default() },
        )
        .unwrap();
        for i in 0..100u32 {
            s2.append(T, b"k", &i.to_le_bytes()).unwrap();
        }
        s2.maintain().unwrap();
        assert_eq!(s2.num_runs(), 0);
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir2).unwrap();
    }

    /// Test extractor: timestamp zones keyed by table id, trace range fixed.
    struct TsByTable;
    impl crate::run::ZoneExtractor for TsByTable {
        fn zones(&self, table: TableId, _: &[u8], _: &[u8]) -> Option<crate::run::RowZones> {
            Some(crate::run::RowZones {
                trace_min: 1,
                trace_max: 9,
                ts_min: table.0 as u64 * 100,
                ts_max: table.0 as u64 * 100 + 50,
            })
        }
    }

    #[test]
    fn drop_expired_runs_drops_only_fully_expired_runs() {
        let dir = tmp_dir("retention");
        let metrics = Arc::new(StoreMetrics::new());
        let old_t = TableId(1); // ts range [100, 150]
        let new_t = TableId(4); // ts range [400, 450]
        let s = DiskStore::open_with(
            &dir,
            DiskOptions { metrics: Some(metrics.clone()), ..DiskOptions::default() },
        )
        .unwrap();
        s.set_zone_extractor(Arc::new(TsByTable));
        s.put(old_t, b"old", b"1").unwrap();
        s.put(new_t, b"new", b"2").unwrap();
        s.compact().unwrap();
        assert_eq!(s.num_runs(), 2);
        assert_eq!(s.run_time_range(), Some((100, 450)));
        // Cutoff between the two runs' ranges: only the old one expires.
        assert_eq!(s.drop_expired_runs(200).unwrap(), 1);
        assert_eq!(s.num_runs(), 1);
        assert_eq!(metrics.runs_expired(), 1);
        assert!(s.get(old_t, b"old").is_none(), "expired run no longer serves");
        assert_eq!(s.get(new_t, b"new").unwrap().as_ref(), b"2");
        // Nothing left to expire below the same cutoff.
        assert_eq!(s.drop_expired_runs(200).unwrap(), 0);
        drop(s);
        // The rewritten manifest survives reopen.
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.num_runs(), 1);
        assert!(s.get(old_t, b"old").is_none());
        assert_eq!(s.get(new_t, b"new").unwrap().as_ref(), b"2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_compaction_leaves_store_state_unchanged() {
        let dir = tmp_dir("compact-crash");
        let fault = FaultFs::new();
        {
            let s = open_fault(&dir, &fault);
            s.put(T, b"a", b"1").unwrap();
            s.put(T, b"b", b"2").unwrap();
            s.flush().unwrap();
        }
        let s = open_fault(&dir, &fault);
        // Crash after a handful of bytes: somewhere inside the run write,
        // before the manifest rename can land.
        fault.arm_crash_after_bytes(10);
        assert!(s.compact().is_err());
        fault.heal();
        drop(s);
        // Whatever the crash left behind (orphan run files, a manifest
        // .tmp), replay must reproduce the pre-compaction state.
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"2");
        assert_eq!(s.num_runs(), 0, "no manifest was published");
        // A later compaction sweeps the orphans and completes normally.
        s.compact().unwrap();
        assert_eq!(s.num_runs(), 1);
        let report = crate::run::verify_runs(&RealFs, &dir).unwrap();
        assert!(report.ok(), "{report:?}");
        assert_eq!(report.orphans, 0, "completed compaction swept crash leftovers");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_snapshot_store_upgrades_to_runs_on_compact() {
        let dir = tmp_dir("legacy-upgrade");
        fs::create_dir_all(&dir).unwrap();
        // A pre-run-tier layout: snapshot-marker segment plus a tail write.
        let mut seg0 = Vec::new();
        seg0.extend_from_slice(&encode_record(OP_SNAPSHOT, TableId(0), b"", b""));
        seg0.extend_from_slice(&encode_record(OP_PUT, T, b"k", b"legacy"));
        fs::write(segment_path(&dir, 0), &seg0).unwrap();
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.num_runs(), 0);
        assert_eq!(s.get(T, b"k").unwrap().as_ref(), b"legacy");
        s.compact().unwrap();
        assert_eq!(s.num_runs(), 1);
        drop(s);
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"k").unwrap().as_ref(), b"legacy");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durability_policy_names_roundtrip() {
        for p in [DurabilityPolicy::Always, DurabilityPolicy::Batch, DurabilityPolicy::Os] {
            assert_eq!(DurabilityPolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(DurabilityPolicy::from_name("paranoid"), None);
        assert_eq!(DurabilityPolicy::default(), DurabilityPolicy::Batch);
    }

    #[test]
    fn durability_always_fsyncs_every_record() {
        let dir = tmp_dir("durability-always");
        let metrics = Arc::new(StoreMetrics::new());
        let s = DiskStore::open_with(
            &dir,
            DiskOptions {
                durability: DurabilityPolicy::Always,
                metrics: Some(metrics.clone()),
                ..DiskOptions::default()
            },
        )
        .unwrap();
        s.put(T, b"a", b"1").unwrap();
        s.put(T, b"b", b"2").unwrap();
        assert_eq!(metrics.fsyncs(), 2);
        s.begin_batch().unwrap();
        s.put(T, b"c", b"3").unwrap();
        s.commit_batch().unwrap();
        assert_eq!(metrics.batch_commits(), 1);
        // begin + put fsync per record, plus the commit-boundary fsync.
        assert_eq!(metrics.fsyncs(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_expose_degraded_flag_and_aborts() {
        let dir = tmp_dir("metrics-degraded");
        let fault = FaultFs::new();
        let metrics = Arc::new(StoreMetrics::new());
        let s = DiskStore::open_with(
            &dir,
            DiskOptions {
                vfs: Arc::new(fault.clone()),
                metrics: Some(metrics.clone()),
                ..DiskOptions::default()
            },
        )
        .unwrap();
        s.begin_batch().unwrap();
        s.put(T, b"a", b"1").unwrap();
        s.abort_batch();
        assert_eq!(metrics.batch_aborts(), 1);
        assert!(metrics.degraded());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Flip one mid-file byte of `path` on the real filesystem — simulated
    /// at-rest bit rot for a closed store.
    fn flip_mid_byte(path: &Path) {
        let mut data = fs::read(path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        fs::write(path, data).unwrap();
    }

    /// Path of the run file holding `table`'s rows.
    fn run_path_for(dir: &Path, table: TableId) -> PathBuf {
        for entry in fs::read_dir(dir).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            if let Some((_, t)) = crate::run::parse_run_file_name(&name) {
                if t == table {
                    return dir.join(name);
                }
            }
        }
        panic!("no run file for table {table:?} in {}", dir.display());
    }

    #[test]
    fn damaged_run_quarantines_on_open_instead_of_failing() {
        let dir = tmp_dir("quarantine-open");
        let t2 = TableId(8);
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"hit", b"run-row").unwrap();
            s.put(t2, b"safe", b"other-table").unwrap();
            s.compact().unwrap();
        }
        flip_mid_byte(&run_path_for(&dir, T));
        let metrics = Arc::new(StoreMetrics::new());
        let s = DiskStore::open_with(
            &dir,
            DiskOptions { metrics: Some(metrics.clone()), ..DiskOptions::default() },
        )
        .unwrap();
        // The damaged run is out of the searched set: its rows are gone,
        // the surviving table still answers, nothing fails.
        assert!(s.get(T, b"hit").is_none());
        assert_eq!(s.get(t2, b"safe").unwrap().as_ref(), b"other-table");
        let q = s.quarantine();
        assert_eq!(q.len(), 1);
        assert_eq!(q.tables(), vec![T]);
        match s.coverage() {
            Coverage::Narrowed { quarantined_tables, reason } => {
                assert_eq!(quarantined_tables, vec![T]);
                assert!(!reason.is_empty());
            }
            Coverage::Full => panic!("damaged run did not narrow coverage"),
        }
        assert_eq!(metrics.runs_quarantined(), 1);
        assert_eq!(metrics.quarantined_live(), 1);
        // New writes still land (in the delta and segments).
        s.put(T, b"fresh", b"write").unwrap();
        assert_eq!(s.get(T, b"fresh").unwrap().as_ref(), b"write");
        s.flush().unwrap();
        drop(s);
        // The manifest still references the damaged run, so a reopen
        // re-quarantines it — the narrowed state is sticky until repaired.
        let s = DiskStore::open(&dir).unwrap();
        assert!(!s.coverage().is_full());
        assert_eq!(s.get(T, b"fresh").unwrap().as_ref(), b"write");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_and_expiry_are_refused_while_quarantined() {
        let dir = tmp_dir("quarantine-blocks-compact");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"k", b"v").unwrap();
            s.compact().unwrap();
        }
        flip_mid_byte(&run_path_for(&dir, T));
        let s = DiskStore::open_with(
            &dir,
            DiskOptions { run_flush_bytes: Some(1), ..DiskOptions::default() },
        )
        .unwrap();
        assert!(!s.coverage().is_full());
        // A compaction would publish a manifest without the quarantined
        // run, silently finalizing its loss — refused until repair.
        let err = s.compact().unwrap_err();
        assert!(err.to_string().contains("quarantined"), "{err}");
        let err = s.drop_expired_runs(u64::MAX).unwrap_err();
        assert!(err.to_string().contains("quarantined"), "{err}");
        // maintain() (the indexer's per-batch hook) waits instead of
        // failing every committed batch.
        s.put(T, b"more", b"data").unwrap();
        s.maintain().unwrap();
        assert!(!s.coverage().is_full());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_quarantines_bit_rotted_run() {
        let dir = tmp_dir("scrub-bit-rot");
        let fault = FaultFs::new();
        let metrics = Arc::new(StoreMetrics::new());
        let s = DiskStore::open_with(
            &dir,
            DiskOptions {
                vfs: Arc::new(fault.clone()),
                metrics: Some(metrics.clone()),
                ..DiskOptions::default()
            },
        )
        .unwrap();
        s.put(T, b"k", b"v").unwrap();
        s.compact().unwrap();
        // A clean pass finds nothing.
        assert_eq!(s.scrub(), ScrubOutcome { runs_checked: 1, newly_quarantined: 0 });
        assert!(s.coverage().is_full());
        // Rot a byte of the run file: the resident image is unaffected (no
        // read touches disk), but the next scrub re-reads the file.
        fault.arm_bit_rot("run-", 10);
        assert_eq!(s.get(T, b"k").unwrap().as_ref(), b"v", "resident reads unaffected");
        assert_eq!(s.scrub(), ScrubOutcome { runs_checked: 1, newly_quarantined: 1 });
        assert!(!s.coverage().is_full());
        assert!(s.get(T, b"k").is_none());
        assert_eq!(metrics.scrub_passes(), 2);
        assert_eq!(metrics.runs_quarantined(), 1);
        // Nothing live is left to check, and the quarantine is not
        // double-counted.
        assert_eq!(s.scrub(), ScrubOutcome { runs_checked: 0, newly_quarantined: 0 });
        assert_eq!(metrics.quarantined_live(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repair_without_history_restores_coverage_with_bounded_loss() {
        let dir = tmp_dir("repair-lossy");
        let t2 = TableId(9);
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"lost", b"only-in-damaged-run").unwrap();
            s.put(t2, b"kept", b"in-surviving-run").unwrap();
            s.compact().unwrap();
        }
        flip_mid_byte(&run_path_for(&dir, T));
        let metrics = Arc::new(StoreMetrics::new());
        let s = DiskStore::open_with(
            &dir,
            DiskOptions { metrics: Some(metrics.clone()), ..DiskOptions::default() },
        )
        .unwrap();
        s.put(T, b"delta", b"post-damage write").unwrap();
        assert!(!s.coverage().is_full());
        let outcome = s.repair().unwrap();
        assert_eq!(outcome, RepairOutcome { repaired: 1, full_history: false });
        // Integrity is back — coverage Full, survivors and delta intact.
        // The damaged run's row is gone: the default segment sweep had
        // already removed the log that could have rebuilt it.
        assert!(s.coverage().is_full());
        assert!(s.quarantine().is_empty());
        assert!(s.get(T, b"lost").is_none());
        assert_eq!(s.get(t2, b"kept").unwrap().as_ref(), b"in-surviving-run");
        assert_eq!(s.get(T, b"delta").unwrap().as_ref(), b"post-damage write");
        assert_eq!(metrics.runs_repaired(), 1);
        assert_eq!(metrics.quarantined_live(), 0);
        // The rebuilt tier verifies clean and the damaged file was swept.
        let report = crate::run::verify_runs(&RealFs, &dir).unwrap();
        assert!(report.ok(), "{report:?}");
        drop(s);
        let s = DiskStore::open(&dir).unwrap();
        assert!(s.coverage().is_full());
        assert_eq!(s.get(T, b"delta").unwrap().as_ref(), b"post-damage write");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repair_with_retained_segments_is_lossless() {
        let dir = tmp_dir("repair-lossless");
        {
            let s = DiskStore::open_with(
                &dir,
                DiskOptions { retain_segments: true, ..DiskOptions::default() },
            )
            .unwrap();
            s.put(T, b"a", b"first").unwrap();
            s.append(T, b"a", b"+more").unwrap();
            s.compact().unwrap();
            s.put(T, b"b", b"second-era").unwrap();
            s.compact().unwrap();
            s.put(T, b"c", b"delta-row").unwrap();
            s.flush().unwrap();
            // retain_segments kept the complete history on disk.
            assert_eq!(list_segments(&RealFs, &dir).unwrap(), vec![0, 1, 2]);
        }
        flip_mid_byte(&run_path_for(&dir, T));
        let metrics = Arc::new(StoreMetrics::new());
        let s = DiskStore::open_with(
            &dir,
            DiskOptions {
                metrics: Some(metrics.clone()),
                retain_segments: true,
                ..DiskOptions::default()
            },
        )
        .unwrap();
        assert!(!s.coverage().is_full());
        assert!(s.get(T, b"a").is_none(), "damaged run's rows are narrowed out");
        let outcome = s.repair().unwrap();
        assert_eq!(outcome, RepairOutcome { repaired: 1, full_history: true });
        // Everything ever acknowledged is back, rebuilt from the log.
        assert!(s.coverage().is_full());
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"first+more");
        assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"second-era");
        assert_eq!(s.get(T, b"c").unwrap().as_ref(), b"delta-row");
        assert_eq!(metrics.runs_repaired(), 1);
        // The repair republished through a compaction, so the history is
        // still complete (contiguous from segment 0) for the next incident.
        let segs = list_segments(&RealFs, &dir).unwrap();
        assert_eq!(segs, (0..segs.len() as u64).collect::<Vec<_>>());
        let report = crate::run::verify_runs(&RealFs, &dir).unwrap();
        assert!(report.ok(), "{report:?}");
        drop(s);
        let s = DiskStore::open_with(
            &dir,
            DiskOptions { retain_segments: true, ..DiskOptions::default() },
        )
        .unwrap();
        assert!(s.coverage().is_full());
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"first+more");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_scrubber_detects_damage_within_its_interval() {
        let dir = tmp_dir("scrubber-thread");
        let fault = FaultFs::new();
        let metrics = Arc::new(StoreMetrics::new());
        let s = Arc::new(
            DiskStore::open_with(
                &dir,
                DiskOptions {
                    vfs: Arc::new(fault.clone()),
                    metrics: Some(metrics.clone()),
                    ..DiskOptions::default()
                },
            )
            .unwrap(),
        );
        s.put(T, b"k", b"v").unwrap();
        s.compact().unwrap();
        let handle =
            DiskStore::spawn_scrubber(s.clone(), Duration::from_millis(1), Duration::ZERO).unwrap();
        fault.arm_bit_rot("run-", 10);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while s.coverage().is_full() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.stop();
        assert!(!s.coverage().is_full(), "scrubber never caught the bit rot");
        assert!(metrics.scrub_passes() >= 1);
        assert_eq!(metrics.runs_quarantined(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
