//! Log-structured persistent store.
//!
//! Every mutation is appended as one record to the active segment file; the
//! current state is kept in an inner [`MemStore`] (the "memtable") and
//! rebuilt by replaying segments on open. [`DiskStore::compact`] folds all
//! segments into a single snapshot segment of `put`s.
//!
//! This mirrors the write path Cassandra gives the paper — sequential
//! appends, point reads served from memory — at laptop scale, and keeps
//! index persistence across the periodic update runs of §3.1.3.
//!
//! ## Record format
//!
//! ```text
//! [crc32: u32 le][op: u8][table: u8][key_len: u32 le][val_len: u32 le][key][value]
//! ```
//!
//! `op`: 1 = put, 2 = append, 3 = delete (delete carries an empty value);
//! 4 = batch begin, 5 = batch commit (both carry table 0, an empty key, and
//! an 8-byte little-endian batch id); 6 = snapshot marker (table 0, empty
//! key, empty value). The checksum covers everything after itself.
//!
//! ## Batch framing
//!
//! [`KvStore::begin_batch`] writes a `batch begin` record; the batch's
//! mutations follow; [`KvStore::commit_batch`] writes the matching
//! `batch commit` and fsyncs per the [`DurabilityPolicy`]. Replay buffers
//! records between a begin and its commit and applies them only at the
//! commit — an uncommitted suffix (the tail a crash leaves behind) is
//! discarded, so recovery always lands on a committed-batch boundary.
//! A commit without its begin, a begin inside an open batch, or a snapshot
//! marker inside a batch cannot be produced by a crash and are reported as
//! corruption.
//!
//! ## Failure model
//!
//! A truncated trailing record (a torn write at crash) is ignored on
//! replay, but a record that is *followed by more data* and fails its
//! checksum — or carries an unknown op — is damage to acknowledged state:
//! [`DiskStore::open`] surfaces it as [`StorageError::CorruptSegment`]
//! instead of silently truncating replay. [`verify_segments`] runs the same
//! checks read-only over a store directory, for the cross-table auditor.
//!
//! Any failed write to the active segment leaves its tail in an unknown
//! state (appending more records after torn bytes would read as mid-segment
//! corruption), so the store flips to a sticky read-only *degraded* state:
//! further writes return [`StorageError::Degraded`], reads keep serving
//! from memory, and a restart recovers the durable committed prefix.
//!
//! Compaction writes the snapshot (headed by a snapshot-marker record that
//! makes replay clear all prior state) to a `.tmp` name, fsyncs it, renames
//! it into place, fsyncs the directory, and only then sweeps old segments —
//! tolerating per-file remove failures, since replay is correct with any
//! subset of old segments remaining.

use crate::codec::{Dec, Enc};
use crate::crc::crc32;
use crate::error::StorageError;
use crate::kv::{KvStore, TableId};
use crate::mem::MemStore;
use crate::metrics::StoreMetrics;
use crate::vfs::{RealFs, Vfs, VfsFile};
use bytes::Bytes;
use parking_lot::Mutex;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const OP_PUT: u8 = 1;
const OP_APPEND: u8 = 2;
const OP_DELETE: u8 = 3;
const OP_BATCH_BEGIN: u8 = 4;
const OP_BATCH_COMMIT: u8 = 5;
const OP_SNAPSHOT: u8 = 6;

/// When the store fsyncs the active segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityPolicy {
    /// Fsync after every record write. Slowest, smallest loss window.
    Always,
    /// Fsync once per committed batch (and on explicit `flush`). The
    /// default: a crash loses at most the uncommitted batch that replay
    /// discards anyway.
    #[default]
    Batch,
    /// Never fsync from the write path; only push userspace buffers to the
    /// OS at commit. A power failure may lose committed batches, a process
    /// crash does not.
    Os,
}

impl DurabilityPolicy {
    /// Parse a policy from its flag name (`always` / `batch` / `os`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "always" => Some(Self::Always),
            "batch" => Some(Self::Batch),
            "os" => Some(Self::Os),
            _ => None,
        }
    }

    /// The flag name of this policy.
    pub fn name(self) -> &'static str {
        match self {
            Self::Always => "always",
            Self::Batch => "batch",
            Self::Os => "os",
        }
    }
}

/// Options for [`DiskStore::open_with`].
#[derive(Debug, Clone)]
pub struct DiskOptions {
    /// Fsync policy of the write path.
    pub durability: DurabilityPolicy,
    /// Filesystem implementation (swap in [`crate::vfs::FaultFs`] to test).
    pub vfs: Arc<dyn Vfs>,
    /// Metrics handle for batch/fsync/degraded accounting.
    pub metrics: Option<Arc<StoreMetrics>>,
}

impl Default for DiskOptions {
    fn default() -> Self {
        Self { durability: DurabilityPolicy::default(), vfs: Arc::new(RealFs), metrics: None }
    }
}

/// Persistent [`KvStore`] backed by append-only segment files in one
/// directory.
pub struct DiskStore {
    dir: PathBuf,
    state: MemStore,
    vfs: Arc<dyn Vfs>,
    durability: DurabilityPolicy,
    metrics: Option<Arc<StoreMetrics>>,
    /// Sticky degraded reason. Lock order: `writer` before `degraded`.
    degraded: Mutex<Option<String>>,
    next_batch: AtomicU64,
    writer: Mutex<Writer>,
}

struct Writer {
    file: Box<dyn VfsFile>,
    segment: u64,
    in_batch: Option<u64>,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore")
            .field("dir", &self.dir)
            .field("durability", &self.durability)
            .finish()
    }
}

fn segment_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("seg-{n:06}.log"))
}

/// Segment numbers present in `dir`, ascending. `.tmp` files a crashed
/// compaction may have left behind do not match and are ignored.
fn list_segments(vfs: &dyn Vfs, dir: &Path) -> io::Result<Vec<u64>> {
    let mut nums = Vec::new();
    for name in vfs.read_dir_names(dir)? {
        if let Some(num) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".log")) {
            if let Ok(n) = num.parse() {
                nums.push(n);
            }
        }
    }
    nums.sort_unstable();
    Ok(nums)
}

impl DiskStore {
    /// Open (or create) a store in `dir` with default options, replaying any
    /// existing segments.
    ///
    /// A truncated trailing record (torn write at crash) is tolerated and
    /// dropped, as is an uncommitted batch suffix; a checksum mismatch
    /// anywhere else fails the open with [`StorageError::CorruptSegment`] —
    /// replaying past damaged state would silently serve a wrong index.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        Self::open_with(dir, DiskOptions::default())
    }

    /// Open (or create) a store with an explicit durability policy, VFS and
    /// metrics handle.
    pub fn open_with(dir: impl AsRef<Path>, options: DiskOptions) -> Result<Self, StorageError> {
        let DiskOptions { durability, vfs, metrics } = options;
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir)?;
        let state = MemStore::new();
        let segments = list_segments(vfs.as_ref(), &dir)?;
        let mut next_batch = 0u64;
        for &n in &segments {
            let scan = replay_segment(vfs.as_ref(), &segment_path(&dir, n), &state)?;
            if let Some(id) = scan.max_batch_id {
                next_batch = next_batch.max(id + 1);
            }
        }
        let next = segments.last().map_or(0, |n| n + 1);
        let file = vfs.open_append(&segment_path(&dir, next))?;
        Ok(Self {
            dir,
            state,
            vfs,
            durability,
            metrics,
            degraded: Mutex::new(None),
            next_batch: AtomicU64::new(next_batch),
            writer: Mutex::new(Writer { file, segment: next, in_batch: None }),
        })
    }

    /// The configured fsync policy.
    pub fn durability(&self) -> DurabilityPolicy {
        self.durability
    }

    fn degraded_reason(&self) -> Option<String> {
        self.degraded.lock().clone()
    }

    /// Flip the sticky degraded flag (first reason wins).
    fn enter_degraded(&self, reason: String) {
        let mut d = self.degraded.lock();
        if d.is_none() {
            if let Some(m) = &self.metrics {
                m.set_degraded(true);
            }
            *d = Some(reason);
        }
    }

    fn check_writable(&self) -> Result<(), StorageError> {
        match self.degraded_reason() {
            Some(reason) => Err(StorageError::Degraded { reason }),
            None => Ok(()),
        }
    }

    /// Append one record under the writer lock, honoring the `Always`
    /// fsync policy.
    fn write_record(&self, w: &mut Writer, rec: &[u8]) -> io::Result<()> {
        w.file.write_all(rec)?;
        if self.durability == DurabilityPolicy::Always {
            w.file.sync_all()?;
            if let Some(m) = &self.metrics {
                m.record_fsync();
            }
        }
        Ok(())
    }

    fn log(&self, op: u8, table: TableId, key: &[u8], value: &[u8]) -> Result<(), StorageError> {
        self.check_writable()?;
        let rec = encode_record(op, table, key, value);
        let mut w = self.writer.lock();
        // Re-check under the writer lock: another writer may have failed
        // (and degraded the store) while we waited, and appending after its
        // torn bytes would read as mid-segment corruption on replay.
        self.check_writable()?;
        if let Err(e) = self.write_record(&mut w, &rec) {
            self.enter_degraded(format!("segment write failed: {e}"));
            return Err(StorageError::Io(e));
        }
        Ok(())
    }

    /// Rewrite the full live state into a fresh snapshot segment and delete
    /// all older segments. Concurrent writers are blocked for the duration.
    ///
    /// Crash-safe: the snapshot is built under a `.tmp` name replay ignores,
    /// fsynced, renamed into place, and the directory fsynced; only then are
    /// old segments swept. The snapshot opens with a marker record that
    /// makes replay drop all earlier state, so recovery is correct with
    /// *any* subset of old segments still present — a remove failure during
    /// the sweep is collected and reported once, after the sweep finishes.
    pub fn compact(&self) -> io::Result<()> {
        let mut w = self.writer.lock();
        self.check_writable()?;
        if w.in_batch.is_some() {
            return Err(io::Error::other("cannot compact while a write batch is open"));
        }
        let old_active = w.segment;
        let next = old_active + 1;
        let tmp = self.dir.join(format!("seg-{next:06}.log.tmp"));
        let final_path = segment_path(&self.dir, next);
        // Phase 1: snapshot to the .tmp name and fsync it. A crash here
        // leaves only an ignored .tmp file; the store is unaffected.
        let written = (|| -> io::Result<()> {
            let mut out = self.vfs.create(&tmp)?;
            out.write_all(&encode_record(OP_SNAPSHOT, TableId(0), b"", b""))?;
            for (table, key, value) in &self.state.scan_all() {
                out.write_all(&encode_record(OP_PUT, *table, key, value))?;
            }
            out.sync_all()?;
            Ok(())
        })();
        if let Err(e) = written {
            let _ = self.vfs.remove_file(&tmp);
            return Err(e);
        }
        if let Some(m) = &self.metrics {
            m.record_fsync();
        }
        // Phase 2: publish. A failed rename leaves nothing visible.
        if let Err(e) = self.vfs.rename(&tmp, &final_path) {
            let _ = self.vfs.remove_file(&tmp);
            return Err(e);
        }
        // Point of no return: the snapshot replays after (and supersedes)
        // every current segment, so all further writes must land in a
        // segment numbered after it. Failing to swap the writer would send
        // them to a segment the snapshot shadows — degrade instead.
        match self.vfs.open_append(&segment_path(&self.dir, next + 1)) {
            Ok(file) => {
                w.file = file;
                w.segment = next + 1;
            }
            Err(e) => {
                self.enter_degraded(format!(
                    "compaction published a snapshot but could not open a fresh active segment: {e}"
                ));
                return Err(e);
            }
        }
        drop(w);
        // Make the rename durable before deleting the data it replaces.
        self.vfs.sync_dir(&self.dir)?;
        // Phase 3: sweep old segments. Failures are collected so one bad
        // unlink cannot abort the sweep halfway; leftovers are harmless.
        let mut failures: Vec<String> = Vec::new();
        match list_segments(self.vfs.as_ref(), &self.dir) {
            Ok(nums) => {
                for n in nums {
                    if n <= old_active {
                        if let Err(e) = self.vfs.remove_file(&segment_path(&self.dir, n)) {
                            failures.push(format!("seg-{n:06}.log: {e}"));
                        }
                    }
                }
            }
            Err(e) => failures.push(format!("listing segments: {e}")),
        }
        if !failures.is_empty() {
            return Err(io::Error::other(format!(
                "compaction succeeded, but {} old segment file(s) could not be removed \
                 (replay stays correct with them present): {}",
                failures.len(),
                failures.join("; ")
            )));
        }
        Ok(())
    }

    /// Number of segment files currently on disk.
    pub fn num_segments(&self) -> io::Result<usize> {
        Ok(list_segments(self.vfs.as_ref(), &self.dir)?.len())
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Serialize one log record:
/// `[crc: u32 over the rest][op][table][key_len][val_len][key][value]`.
fn encode_record(op: u8, table: TableId, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut body = Enc::with_capacity(14 + key.len() + value.len());
    body.u8(op).u8(table.0).u32(key.len() as u32).u32(value.len() as u32).bytes(key).bytes(value);
    let mut rec = Enc::with_capacity(4 + body.len());
    rec.u32(crc32(body.as_slice())).bytes(body.as_slice());
    rec.into_vec()
}

/// First 8 bytes of `v` as a little-endian u64 (zero-padded; callers only
/// pass length-validated batch-id values).
fn le_u64(v: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    let n = v.len().min(8);
    b[..n].copy_from_slice(&v[..n]);
    u64::from_le_bytes(b)
}

/// How one pass over a segment's bytes ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentEnd {
    /// Every byte belonged to a whole, checksum-verified record.
    Clean {
        /// Number of records parsed.
        records: u64,
    },
    /// The final record is incomplete — the torn tail of a crashed write.
    /// Everything before `offset` was verified; the tail is dropped.
    TornTail {
        /// Records parsed before the tail.
        records: u64,
        /// Byte offset where the torn record starts.
        offset: usize,
    },
    /// A record failed verification with more data after it (or a verified
    /// record carries an unknown op or breaks the batch protocol). Nothing
    /// at or past `offset` can be trusted.
    Corrupt {
        /// Records parsed before the damage.
        records: u64,
        /// Byte offset of the damaged record.
        offset: usize,
        /// What failed to verify.
        reason: String,
    },
}

/// Parse the records of one segment, feeding each verified record to
/// `apply`. Never panics, whatever `data` holds — this is the surface the
/// decoder fuzz tests drive.
///
/// This is the *record-level* check (checksums, known ops, control-record
/// shapes); it does not interpret batch framing — records inside an
/// uncommitted batch still reach `apply`. Use [`replay_segment_bytes`] for
/// batch-aware replay.
pub fn parse_segment_bytes(
    data: &[u8],
    mut apply: impl FnMut(u8, TableId, &[u8], &[u8]),
) -> SegmentEnd {
    let mut d = Dec::new(data);
    let mut records = 0u64;
    loop {
        let offset = data.len() - d.remaining();
        if d.is_done() {
            return SegmentEnd::Clean { records };
        }
        let Some(stored_crc) = d.u32() else {
            return SegmentEnd::TornTail { records, offset };
        };
        let body_start = data.len() - d.remaining();
        let (Some(op), Some(table), Some(klen), Some(vlen)) = (d.u8(), d.u8(), d.u32(), d.u32())
        else {
            return SegmentEnd::TornTail { records, offset };
        };
        let (Some(key), Some(value)) = (d.bytes(klen as usize), d.bytes(vlen as usize)) else {
            return SegmentEnd::TornTail { records, offset };
        };
        let body_end = data.len() - d.remaining();
        if crc32(&data[body_start..body_end]) != stored_crc {
            return SegmentEnd::Corrupt { records, offset, reason: "checksum mismatch".into() };
        }
        match op {
            OP_PUT | OP_APPEND | OP_DELETE => {}
            OP_BATCH_BEGIN | OP_BATCH_COMMIT => {
                if table != 0 || klen != 0 || vlen != 8 {
                    return SegmentEnd::Corrupt {
                        records,
                        offset,
                        reason: "malformed batch control record".into(),
                    };
                }
            }
            OP_SNAPSHOT => {
                if table != 0 || klen != 0 || vlen != 0 {
                    return SegmentEnd::Corrupt {
                        records,
                        offset,
                        reason: "malformed snapshot record".into(),
                    };
                }
            }
            _ => {
                return SegmentEnd::Corrupt { records, offset, reason: format!("unknown op {op}") }
            }
        }
        apply(op, TableId(table), key, value);
        records += 1;
    }
}

/// Outcome of one batch-aware pass over a segment's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// How the byte-level parse ended. Batch-protocol violations (a commit
    /// without its begin, a begin inside an open batch, a snapshot marker
    /// inside a batch) surface here as [`SegmentEnd::Corrupt`].
    pub end: SegmentEnd,
    /// Batches whose begin *and* commit were replayed.
    pub batches_committed: u64,
    /// Uncommitted batch suffixes discarded (at most one: only the crash
    /// frontier may legitimately carry one).
    pub batches_discarded: u64,
    /// Highest batch id seen, if any batch records were present.
    pub max_batch_id: Option<u64>,
}

/// Records buffered while a batch is open: `(op, table, key, value)`.
type BufferedRecord = (u8, TableId, Vec<u8>, Vec<u8>);

/// Replay one segment's bytes with batch framing: records between a batch
/// begin and its commit are buffered and reach `apply` only when the commit
/// is seen; an uncommitted suffix is discarded (counted, not applied).
/// `apply` therefore sees only effective records: out-of-batch mutations,
/// committed-batch mutations, and snapshot markers. Never panics.
pub fn replay_segment_bytes(
    data: &[u8],
    mut apply: impl FnMut(u8, TableId, &[u8], &[u8]),
) -> SegmentScan {
    let mut pending: Option<(u64, Vec<BufferedRecord>)> = None;
    let mut committed = 0u64;
    let mut max_batch_id: Option<u64> = None;
    // (records before the violation, its byte offset, reason)
    let mut violation: Option<(u64, usize, String)> = None;
    let mut offset = 0usize;
    let mut processed = 0u64;
    let end = parse_segment_bytes(data, |op, table, key, value| {
        let rec_offset = offset;
        offset += 14 + key.len() + value.len();
        if violation.is_some() {
            return;
        }
        match op {
            OP_BATCH_BEGIN => {
                let id = le_u64(value);
                if let Some((open, _)) = &pending {
                    violation = Some((
                        processed,
                        rec_offset,
                        format!("batch {id} begins while batch {open} is uncommitted"),
                    ));
                    return;
                }
                max_batch_id = Some(max_batch_id.map_or(id, |m| m.max(id)));
                pending = Some((id, Vec::new()));
            }
            OP_BATCH_COMMIT => {
                let id = le_u64(value);
                match pending.take() {
                    Some((begin_id, buffered)) if begin_id == id => {
                        for (op, table, key, value) in buffered {
                            apply(op, table, &key, &value);
                        }
                        committed += 1;
                    }
                    Some((begin_id, _)) => {
                        violation = Some((
                            processed,
                            rec_offset,
                            format!("batch commit {id} does not match open batch {begin_id}"),
                        ));
                        return;
                    }
                    None => {
                        violation = Some((
                            processed,
                            rec_offset,
                            format!("batch commit {id} without a matching begin"),
                        ));
                        return;
                    }
                }
            }
            OP_SNAPSHOT => {
                if pending.is_some() {
                    violation = Some((
                        processed,
                        rec_offset,
                        "snapshot marker inside an open batch".into(),
                    ));
                    return;
                }
                apply(op, table, key, value);
            }
            _ => {
                if let Some((_, buffered)) = pending.as_mut() {
                    buffered.push((op, table, key.to_vec(), value.to_vec()));
                } else {
                    apply(op, table, key, value);
                }
            }
        }
        processed += 1;
    });
    let batches_discarded = u64::from(violation.is_none() && pending.is_some());
    let end = match violation {
        // A protocol violation always precedes any byte-level damage the
        // parser may also have found (parsing stops feeding records at the
        // first corrupt one), so it wins.
        Some((records, offset, reason)) => SegmentEnd::Corrupt { records, offset, reason },
        None => end,
    };
    SegmentScan { end, batches_committed: committed, batches_discarded, max_batch_id }
}

fn replay_segment(
    vfs: &dyn Vfs,
    path: &Path,
    state: &MemStore,
) -> Result<SegmentScan, StorageError> {
    let data = vfs.read(path)?;
    // A store failure mid-replay means the in-memory image is missing
    // records the log says exist — that must fail the open, not be
    // swallowed. (MemStore is infallible today; this guards the trait.)
    let mut store_err: Option<StorageError> = None;
    let scan = replay_segment_bytes(&data, |op, table, key, value| {
        if store_err.is_some() {
            return;
        }
        let applied = match op {
            OP_PUT => state.put(table, key, value),
            OP_APPEND => state.append(table, key, value),
            OP_DELETE => state.delete(table, key).map(|_| ()),
            // OP_SNAPSHOT: this segment supersedes everything replayed
            // so far.
            _ => {
                state.clear_all();
                Ok(())
            }
        };
        if let Err(e) = applied {
            store_err = Some(e);
        }
    });
    if let Some(e) = store_err {
        return Err(e);
    }
    match &scan.end {
        SegmentEnd::Corrupt { offset, reason, .. } => Err(StorageError::CorruptSegment {
            segment: path.to_path_buf(),
            offset: *offset,
            reason: reason.clone(),
        }),
        _ => Ok(scan),
    }
}

/// One verification failure found by [`verify_segments`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentViolation {
    /// Segment file the damage lives in.
    pub segment: PathBuf,
    /// Byte offset of the damaged record.
    pub offset: usize,
    /// What failed to verify.
    pub reason: String,
}

/// Outcome of a read-only checksum pass over every segment of a store
/// directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentReport {
    /// Segment files inspected.
    pub segments: usize,
    /// Whole, checksum-verified records across all segments.
    pub records: u64,
    /// Torn tail records dropped (at most one per segment; only the crash
    /// frontier may legitimately carry one).
    pub torn_tails: usize,
    /// Write batches with both begin and commit present.
    pub batches_committed: u64,
    /// Uncommitted batch suffixes replay would discard.
    pub batches_discarded: u64,
    /// Damaged records (parsing stops at the first one per segment).
    pub violations: Vec<SegmentViolation>,
}

impl SegmentReport {
    /// True when every record of every segment verified.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verify the CRC (record structure and batch framing) of every segment in
/// `dir` without mutating or replaying anything. Damage is *collected*, not
/// failed on, so the auditor can report all broken segments at once.
pub fn verify_segments(dir: impl AsRef<Path>) -> Result<SegmentReport, StorageError> {
    let dir = dir.as_ref();
    let mut report = SegmentReport::default();
    for n in list_segments(&RealFs, dir)? {
        let path = segment_path(dir, n);
        let data = RealFs.read(&path)?;
        report.segments += 1;
        let scan = replay_segment_bytes(&data, |_, _, _, _| {});
        report.batches_committed += scan.batches_committed;
        report.batches_discarded += scan.batches_discarded;
        match scan.end {
            SegmentEnd::Clean { records } => report.records += records,
            SegmentEnd::TornTail { records, .. } => {
                report.records += records;
                report.torn_tails += 1;
            }
            SegmentEnd::Corrupt { records, offset, reason } => {
                report.records += records;
                report.violations.push(SegmentViolation { segment: path, offset, reason });
            }
        }
    }
    Ok(report)
}

impl KvStore for DiskStore {
    fn get(&self, table: TableId, key: &[u8]) -> Option<Bytes> {
        self.state.get(table, key)
    }

    fn put(&self, table: TableId, key: &[u8], value: &[u8]) -> Result<(), StorageError> {
        self.log(OP_PUT, table, key, value)?;
        self.state.put(table, key, value)
    }

    fn append(&self, table: TableId, key: &[u8], value: &[u8]) -> Result<(), StorageError> {
        self.log(OP_APPEND, table, key, value)?;
        self.state.append(table, key, value)
    }

    fn delete(&self, table: TableId, key: &[u8]) -> Result<bool, StorageError> {
        self.log(OP_DELETE, table, key, &[])?;
        self.state.delete(table, key)
    }

    fn scan(&self, table: TableId) -> Vec<(Bytes, Bytes)> {
        self.state.scan(table)
    }

    fn table_len(&self, table: TableId) -> usize {
        self.state.table_len(table)
    }

    fn flush(&self) -> io::Result<()> {
        let mut w = self.writer.lock();
        self.check_writable()?;
        if let Err(e) = w.file.sync_all() {
            self.enter_degraded(format!("flush failed: {e}"));
            return Err(e);
        }
        if let Some(m) = &self.metrics {
            m.record_fsync();
        }
        Ok(())
    }

    fn begin_batch(&self) -> Result<(), StorageError> {
        let mut w = self.writer.lock();
        self.check_writable()?;
        if let Some(open) = w.in_batch {
            return Err(StorageError::Io(io::Error::other(format!(
                "batch {open} is already open"
            ))));
        }
        let id = self.next_batch.fetch_add(1, Ordering::Relaxed);
        let rec = encode_record(OP_BATCH_BEGIN, TableId(0), b"", &id.to_le_bytes());
        if let Err(e) = self.write_record(&mut w, &rec) {
            self.enter_degraded(format!("batch begin write failed: {e}"));
            return Err(StorageError::Io(e));
        }
        w.in_batch = Some(id);
        Ok(())
    }

    fn commit_batch(&self) -> Result<(), StorageError> {
        let mut w = self.writer.lock();
        self.check_writable()?;
        let Some(id) = w.in_batch else {
            return Err(StorageError::Io(io::Error::other("no open batch to commit")));
        };
        let rec = encode_record(OP_BATCH_COMMIT, TableId(0), b"", &id.to_le_bytes());
        let result = (|| -> io::Result<()> {
            w.file.write_all(&rec)?;
            match self.durability {
                DurabilityPolicy::Always | DurabilityPolicy::Batch => {
                    w.file.sync_all()?;
                    if let Some(m) = &self.metrics {
                        m.record_fsync();
                    }
                }
                DurabilityPolicy::Os => w.file.flush()?,
            }
            Ok(())
        })();
        w.in_batch = None;
        match result {
            Ok(()) => {
                if let Some(m) = &self.metrics {
                    m.record_batch_commit();
                }
                Ok(())
            }
            Err(e) => {
                if let Some(m) = &self.metrics {
                    m.record_batch_abort();
                }
                self.enter_degraded(format!("batch commit failed: {e}"));
                Err(StorageError::Io(e))
            }
        }
    }

    fn abort_batch(&self) {
        let mut w = self.writer.lock();
        if w.in_batch.take().is_some() {
            if let Some(m) = &self.metrics {
                m.record_batch_abort();
            }
            // The memtable already applied part of the batch, but replay
            // will discard the whole uncommitted suffix: memory is ahead of
            // the durable committed prefix until a restart.
            self.enter_degraded(
                "write batch aborted mid-batch; in-memory state is ahead of the durable \
                 committed prefix"
                    .to_owned(),
            );
        }
    }

    fn degraded(&self) -> Option<String> {
        self.degraded_reason()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FaultFs;
    use std::fs;
    use std::io::Write;

    const T: TableId = TableId(3);

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seqdet-disk-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open_fault(dir: &Path, fault: &FaultFs) -> DiskStore {
        DiskStore::open_with(
            dir,
            DiskOptions { vfs: Arc::new(fault.clone()), ..DiskOptions::default() },
        )
        .unwrap()
    }

    #[test]
    fn basic_ops_behave_like_memstore() {
        let dir = tmp_dir("basic");
        let s = DiskStore::open(&dir).unwrap();
        s.put(T, b"k", b"v").unwrap();
        s.append(T, b"k", b"2").unwrap();
        assert_eq!(s.get(T, b"k").unwrap().as_ref(), b"v2");
        assert!(s.delete(T, b"k").unwrap());
        assert!(s.get(T, b"k").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn state_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1").unwrap();
            s.append(T, b"b", b"xy").unwrap();
            s.append(T, b"b", b"z").unwrap();
            s.put(T, b"gone", b"1").unwrap();
            s.delete(T, b"gone").unwrap();
            s.flush().unwrap();
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"xyz");
        assert!(s.get(T, b"gone").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_reduces_segments_and_preserves_state() {
        let dir = tmp_dir("compact");
        {
            let s = DiskStore::open(&dir).unwrap();
            for i in 0..50u32 {
                s.append(T, b"k", &i.to_le_bytes()).unwrap();
            }
            s.flush().unwrap();
        }
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"x", b"y").unwrap();
            s.flush().unwrap();
            assert!(s.num_segments().unwrap() >= 2);
            s.compact().unwrap();
            // snapshot + fresh active segment
            assert_eq!(s.num_segments().unwrap(), 2);
            assert_eq!(s.get(T, b"k").unwrap().len(), 200);
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"k").unwrap().len(), 200);
        assert_eq!(s.get(T, b"x").unwrap().as_ref(), b"y");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_after_compaction_survive_reopen() {
        let dir = tmp_dir("post-compact");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1").unwrap();
            s.compact().unwrap();
            s.put(T, b"b", b"2").unwrap();
            s.flush().unwrap();
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_record_is_ignored() {
        let dir = tmp_dir("torn");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"good", b"1").unwrap();
            s.flush().unwrap();
        }
        // Corrupt: append half a record to the first segment.
        let seg = segment_path(&dir, 0);
        let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0xAA, 0xBB, 0xCC, 0xDD, OP_PUT, 3, 10, 0, 0, 0]).unwrap(); // torn record
        drop(f);
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"good").unwrap().as_ref(), b"1");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_fails_open_with_corrupt_segment() {
        let dir = tmp_dir("crc");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"first", b"1").unwrap();
            s.put(T, b"second", b"2").unwrap();
            s.flush().unwrap();
        }
        // Flip one bit inside the FIRST record's value: the damage sits
        // mid-segment (more data follows), so open must refuse rather than
        // silently truncate replay.
        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        let first_len = encode_record(OP_PUT, T, b"first", b"1").len();
        data[first_len - 1] ^= 0x01;
        fs::write(&seg, &data).unwrap();
        match DiskStore::open(&dir) {
            Err(StorageError::CorruptSegment { segment, offset, reason }) => {
                assert_eq!(segment, seg);
                assert_eq!(offset, 0);
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected CorruptSegment, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_final_record_also_fails_open() {
        // A checksum mismatch in the *last* record is still corruption (the
        // record is whole — a torn write cannot produce it), so open fails.
        let dir = tmp_dir("crc-tail");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"first", b"1").unwrap();
            s.put(T, b"second", b"2").unwrap();
            s.flush().unwrap();
        }
        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        let len = data.len();
        data[len - 1] ^= 0x01;
        fs::write(&seg, &data).unwrap();
        assert!(matches!(
            DiskStore::open(&dir),
            Err(StorageError::CorruptSegment { offset, .. })
                if offset == encode_record(OP_PUT, T, b"first", b"1").len()
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_segments_reports_damage_read_only() {
        let dir = tmp_dir("verify");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1").unwrap();
            s.put(T, b"b", b"2").unwrap();
            s.flush().unwrap();
        }
        let clean = verify_segments(&dir).unwrap();
        assert!(clean.ok());
        assert_eq!(clean.records, 2);
        // Note: open() leaves a fresh empty active segment behind.
        assert!(clean.segments >= 1);

        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        data[5] ^= 0xFF; // inside the first record's body
        fs::write(&seg, &data).unwrap();
        let report = verify_segments(&dir).unwrap();
        assert!(!report.ok());
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].segment, seg);
        assert_eq!(report.records, 0, "parsing stops at the damaged record");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_segment_bytes_never_panics_on_garbage_shapes() {
        // Structured spot checks (the proptest fuzz lives in
        // tests/segment_fuzz.rs): empty, short, and header-lying inputs.
        assert_eq!(parse_segment_bytes(&[], |_, _, _, _| {}), SegmentEnd::Clean { records: 0 });
        assert!(matches!(
            parse_segment_bytes(&[1, 2, 3], |_, _, _, _| {}),
            SegmentEnd::TornTail { records: 0, offset: 0 }
        ));
        // A header claiming a huge value length must read as a torn tail,
        // not an allocation or a panic.
        let mut rec = Enc::new();
        rec.u32(0).u8(OP_PUT).u8(3).u32(4).u32(u32::MAX).bytes(b"keyy");
        assert!(matches!(
            parse_segment_bytes(rec.as_slice(), |_, _, _, _| {}),
            SegmentEnd::TornTail { .. }
        ));
    }

    #[test]
    fn empty_keys_and_values_roundtrip() {
        let dir = tmp_dir("empty");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"", b"").unwrap();
            s.put(T, b"k", b"").unwrap();
            s.flush().unwrap();
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"").unwrap().len(), 0);
        assert_eq!(s.get(T, b"k").unwrap().len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn committed_batch_survives_reopen() {
        let dir = tmp_dir("batch-commit");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.begin_batch().unwrap();
            s.put(T, b"x", b"1").unwrap();
            s.append(T, b"y", b"2").unwrap();
            s.commit_batch().unwrap();
        }
        let report = verify_segments(&dir).unwrap();
        assert!(report.ok());
        assert_eq!(report.batches_committed, 1);
        assert_eq!(report.batches_discarded, 0);
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"x").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"y").unwrap().as_ref(), b"2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_batch_suffix_is_discarded_on_reopen() {
        let dir = tmp_dir("batch-discard");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"keep", b"1").unwrap();
            s.begin_batch().unwrap();
            s.put(T, b"lost-a", b"x").unwrap();
            s.put(T, b"lost-b", b"y").unwrap();
            // No commit: simulate a crash by forcing bytes out without one.
            // (Dropping the store flushes the buffered writer.)
        }
        let report = verify_segments(&dir).unwrap();
        assert!(report.ok());
        assert_eq!(report.batches_discarded, 1);
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"keep").unwrap().as_ref(), b"1");
        assert!(s.get(T, b"lost-a").is_none());
        assert!(s.get(T, b"lost-b").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_ids_keep_growing_across_reopen() {
        let dir = tmp_dir("batch-ids");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.begin_batch().unwrap();
            s.put(T, b"a", b"1").unwrap();
            s.commit_batch().unwrap();
        }
        {
            let s = DiskStore::open(&dir).unwrap();
            assert_eq!(s.next_batch.load(Ordering::Relaxed), 1);
            s.begin_batch().unwrap();
            s.put(T, b"b", b"2").unwrap();
            s.commit_batch().unwrap();
        }
        let report = verify_segments(&dir).unwrap();
        assert_eq!(report.batches_committed, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nested_begin_and_stray_commit_are_refused() {
        let dir = tmp_dir("batch-misuse");
        let s = DiskStore::open(&dir).unwrap();
        assert!(s.commit_batch().is_err(), "commit without begin");
        s.begin_batch().unwrap();
        assert!(s.begin_batch().is_err(), "nested begin");
        s.commit_batch().unwrap();
        assert!(s.degraded().is_none(), "misuse errors must not degrade the store");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_commit_record_fails_open_as_corruption() {
        let dir = tmp_dir("stray-commit");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1").unwrap();
            s.flush().unwrap();
        }
        let seg = segment_path(&dir, 0);
        let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&encode_record(OP_BATCH_COMMIT, TableId(0), b"", &7u64.to_le_bytes())).unwrap();
        drop(f);
        match DiskStore::open(&dir) {
            Err(StorageError::CorruptSegment { offset, reason, .. }) => {
                assert_eq!(offset, encode_record(OP_PUT, T, b"a", b"1").len());
                assert!(reason.contains("without a matching begin"), "{reason}");
            }
            other => panic!("expected CorruptSegment, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_marker_clears_earlier_segments() {
        let dir = tmp_dir("snapshot-marker");
        fs::create_dir_all(&dir).unwrap();
        // Hand-build the post-compaction layout with a stale old segment
        // still present (as if the sweep crashed before removing it).
        let mut seg0 = Vec::new();
        seg0.extend_from_slice(&encode_record(OP_PUT, T, b"stale", b"old"));
        seg0.extend_from_slice(&encode_record(OP_PUT, T, b"k", b"old"));
        fs::write(segment_path(&dir, 0), &seg0).unwrap();
        let mut seg1 = Vec::new();
        seg1.extend_from_slice(&encode_record(OP_SNAPSHOT, TableId(0), b"", b""));
        seg1.extend_from_slice(&encode_record(OP_PUT, T, b"k", b"new"));
        fs::write(segment_path(&dir, 1), &seg1).unwrap();
        let s = DiskStore::open(&dir).unwrap();
        assert!(s.get(T, b"stale").is_none(), "snapshot must clear earlier segments");
        assert_eq!(s.get(T, b"k").unwrap().as_ref(), b"new");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leftover_tmp_snapshot_is_ignored_on_open() {
        let dir = tmp_dir("tmp-ignored");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1").unwrap();
            s.flush().unwrap();
        }
        // A crashed compaction leaves a .tmp file behind; it must be
        // invisible to replay (its content could be anything).
        fs::write(dir.join("seg-000099.log.tmp"), b"half-written garbage").unwrap();
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_failure_degrades_store_but_reads_survive() {
        let dir = tmp_dir("degrade");
        let fault = FaultFs::new();
        let s = open_fault(&dir, &fault);
        s.put(T, b"a", b"1").unwrap();
        fault.arm_fail_after_writes(0);
        let err = s.put(T, b"b", b"2").unwrap_err();
        assert!(matches!(err, StorageError::Io(_)), "first failure is the I/O error: {err}");
        // Sticky: later writes are refused as Degraded, even though the
        // injected fault has passed.
        fault.heal();
        assert!(s.put(T, b"c", b"3").unwrap_err().is_degraded());
        assert!(s.append(T, b"a", b"x").unwrap_err().is_degraded());
        assert!(s.delete(T, b"a").unwrap_err().is_degraded());
        assert!(s.begin_batch().unwrap_err().is_degraded());
        assert!(s.flush().is_err());
        assert!(s.compact().is_err());
        assert!(s.degraded().unwrap().contains("segment write failed"));
        // Reads keep serving the pre-failure state; the failed write was
        // not applied to memory.
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert!(s.get(T, b"b").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abort_batch_degrades_and_reopen_recovers_committed_prefix() {
        let dir = tmp_dir("abort");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.begin_batch().unwrap();
            s.put(T, b"committed", b"1").unwrap();
            s.commit_batch().unwrap();
            s.begin_batch().unwrap();
            s.put(T, b"half", b"x").unwrap();
            s.abort_batch();
            // Memory is ahead of the durable committed prefix: degraded.
            assert!(s.degraded().is_some());
            assert!(s.put(T, b"later", b"y").unwrap_err().is_degraded());
            // The aborted batch's write is still visible in memory…
            assert_eq!(s.get(T, b"half").unwrap().as_ref(), b"x");
        }
        // …but a restart lands on the committed-batch boundary.
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"committed").unwrap().as_ref(), b"1");
        assert!(s.get(T, b"half").is_none());
        assert!(s.degraded().is_none(), "a reopened store starts healthy");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_is_refused_mid_batch() {
        let dir = tmp_dir("compact-mid-batch");
        let s = DiskStore::open(&dir).unwrap();
        s.begin_batch().unwrap();
        s.put(T, b"a", b"1").unwrap();
        assert!(s.compact().is_err());
        s.commit_batch().unwrap();
        s.compact().unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_sweep_tolerates_remove_failures() {
        let dir = tmp_dir("compact-sweep");
        let fault = FaultFs::new();
        {
            let s = open_fault(&dir, &fault);
            s.put(T, b"a", b"1").unwrap();
            s.flush().unwrap();
        }
        let s = open_fault(&dir, &fault);
        s.put(T, b"b", b"2").unwrap();
        // Every remove in the sweep fails; compaction must still finish,
        // publish the snapshot, and report the failures once.
        fault.arm_fail_after_removes(0);
        let err = s.compact().unwrap_err();
        assert!(err.to_string().contains("could not be removed"), "{err}");
        assert!(s.degraded().is_none(), "leftover old segments are harmless");
        // Writes keep working and land after the snapshot.
        fault.heal();
        s.put(T, b"c", b"3").unwrap();
        s.flush().unwrap();
        drop(s);
        // Replay with the old segments still present is correct thanks to
        // the snapshot marker.
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"2");
        assert_eq!(s.get(T, b"c").unwrap().as_ref(), b"3");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durability_policy_names_roundtrip() {
        for p in [DurabilityPolicy::Always, DurabilityPolicy::Batch, DurabilityPolicy::Os] {
            assert_eq!(DurabilityPolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(DurabilityPolicy::from_name("paranoid"), None);
        assert_eq!(DurabilityPolicy::default(), DurabilityPolicy::Batch);
    }

    #[test]
    fn durability_always_fsyncs_every_record() {
        let dir = tmp_dir("durability-always");
        let metrics = Arc::new(StoreMetrics::new());
        let s = DiskStore::open_with(
            &dir,
            DiskOptions {
                durability: DurabilityPolicy::Always,
                metrics: Some(metrics.clone()),
                ..DiskOptions::default()
            },
        )
        .unwrap();
        s.put(T, b"a", b"1").unwrap();
        s.put(T, b"b", b"2").unwrap();
        assert_eq!(metrics.fsyncs(), 2);
        s.begin_batch().unwrap();
        s.put(T, b"c", b"3").unwrap();
        s.commit_batch().unwrap();
        assert_eq!(metrics.batch_commits(), 1);
        // begin + put fsync per record, plus the commit-boundary fsync.
        assert_eq!(metrics.fsyncs(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn metrics_expose_degraded_flag_and_aborts() {
        let dir = tmp_dir("metrics-degraded");
        let fault = FaultFs::new();
        let metrics = Arc::new(StoreMetrics::new());
        let s = DiskStore::open_with(
            &dir,
            DiskOptions {
                vfs: Arc::new(fault.clone()),
                metrics: Some(metrics.clone()),
                ..DiskOptions::default()
            },
        )
        .unwrap();
        s.begin_batch().unwrap();
        s.put(T, b"a", b"1").unwrap();
        s.abort_batch();
        assert_eq!(metrics.batch_aborts(), 1);
        assert!(metrics.degraded());
        fs::remove_dir_all(&dir).unwrap();
    }
}
