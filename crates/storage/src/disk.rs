//! Log-structured persistent store.
//!
//! Every mutation is appended as one record to the active segment file; the
//! current state is kept in an inner [`MemStore`] (the "memtable") and
//! rebuilt by replaying segments on open. [`DiskStore::compact`] folds all
//! segments into a single snapshot segment of `put`s.
//!
//! This mirrors the write path Cassandra gives the paper — sequential
//! appends, point reads served from memory — at laptop scale, and keeps
//! index persistence across the periodic update runs of §3.1.3.
//!
//! ## Record format
//!
//! ```text
//! [crc32: u32 le][op: u8][table: u8][key_len: u32 le][val_len: u32 le][key][value]
//! ```
//!
//! `op`: 1 = put, 2 = append, 3 = delete (delete carries an empty value);
//! the checksum covers everything after itself. A truncated trailing record
//! (torn write at crash) is ignored on replay, and replay of a segment
//! stops at the first checksum mismatch — records after a corrupted one
//! cannot be trusted.

use crate::codec::{Dec, Enc};
use crate::crc::crc32;
use crate::kv::{KvStore, TableId};
use crate::mem::MemStore;
use bytes::Bytes;
use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const OP_PUT: u8 = 1;
const OP_APPEND: u8 = 2;
const OP_DELETE: u8 = 3;

/// Persistent [`KvStore`] backed by append-only segment files in one
/// directory.
pub struct DiskStore {
    dir: PathBuf,
    state: MemStore,
    writer: Mutex<Writer>,
}

struct Writer {
    file: BufWriter<File>,
    segment: u64,
}

impl std::fmt::Debug for DiskStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskStore").field("dir", &self.dir).finish()
    }
}

fn segment_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("seg-{n:06}.log"))
}

/// Segment numbers present in `dir`, ascending.
fn list_segments(dir: &Path) -> io::Result<Vec<u64>> {
    let mut nums = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".log")) {
            if let Ok(n) = num.parse() {
                nums.push(n);
            }
        }
    }
    nums.sort_unstable();
    Ok(nums)
}

impl DiskStore {
    /// Open (or create) a store in `dir`, replaying any existing segments.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let state = MemStore::new();
        let segments = list_segments(&dir)?;
        for &n in &segments {
            replay_segment(&segment_path(&dir, n), &state)?;
        }
        let next = segments.last().map_or(0, |n| n + 1);
        let file = OpenOptions::new().create(true).append(true).open(segment_path(&dir, next))?;
        Ok(Self {
            dir,
            state,
            writer: Mutex::new(Writer { file: BufWriter::new(file), segment: next }),
        })
    }

    fn log(&self, op: u8, table: TableId, key: &[u8], value: &[u8]) {
        let rec = encode_record(op, table, key, value);
        let mut w = self.writer.lock();
        // An in-memory store mutation without its log record would be lost on
        // restart; treat log-write failure as fatal for this process.
        w.file.write_all(&rec).expect("segment write failed");
    }

    /// Rewrite the full live state into a fresh snapshot segment and delete
    /// all older segments. Concurrent writers are blocked for the duration.
    pub fn compact(&self) -> io::Result<()> {
        let mut w = self.writer.lock();
        let snapshot = self.state.scan_all();
        let next = w.segment + 1;
        let path = segment_path(&self.dir, next);
        let mut out = BufWriter::new(File::create(&path)?);
        for (table, key, value) in &snapshot {
            out.write_all(&encode_record(OP_PUT, *table, key, value))?;
        }
        out.flush()?;
        out.get_ref().sync_all()?;
        // Swap the active segment, then remove the old ones.
        let old_active = w.segment;
        let active =
            OpenOptions::new().create(true).append(true).open(segment_path(&self.dir, next + 1))?;
        w.file.flush()?;
        w.file = BufWriter::new(active);
        w.segment = next + 1;
        drop(w);
        for n in list_segments(&self.dir)? {
            if n <= old_active {
                fs::remove_file(segment_path(&self.dir, n))?;
            }
        }
        Ok(())
    }

    /// Number of segment files currently on disk.
    pub fn num_segments(&self) -> io::Result<usize> {
        Ok(list_segments(&self.dir)?.len())
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Serialize one log record:
/// `[crc: u32 over the rest][op][table][key_len][val_len][key][value]`.
fn encode_record(op: u8, table: TableId, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut body = Enc::with_capacity(14 + key.len() + value.len());
    body.u8(op).u8(table.0).u32(key.len() as u32).u32(value.len() as u32).bytes(key).bytes(value);
    let mut rec = Enc::with_capacity(4 + body.len());
    rec.u32(crc32(body.as_slice())).bytes(body.as_slice());
    rec.into_vec()
}

fn replay_segment(path: &Path, state: &MemStore) -> io::Result<()> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let mut d = Dec::new(&data);
    // Parse records; bail out silently on a truncated tail, and stop
    // replay on a checksum mismatch (a torn or corrupted record means
    // nothing after it can be trusted).
    while let Some(stored_crc) = d.u32() {
        let body_start = data.len() - d.remaining();
        let Some(op) = d.u8() else { break };
        let Some(table) = d.u8() else { break };
        let Some(klen) = d.u32() else { break };
        let Some(vlen) = d.u32() else { break };
        let Some(key) = d.bytes(klen as usize) else { break };
        let Some(value) = d.bytes(vlen as usize) else { break };
        let body_end = data.len() - d.remaining();
        if crc32(&data[body_start..body_end]) != stored_crc {
            break;
        }
        let table = TableId(table);
        match op {
            OP_PUT => state.put(table, key, value),
            OP_APPEND => state.append(table, key, value),
            OP_DELETE => {
                state.delete(table, key);
            }
            _ => break, // unknown op: stop replay of this segment
        }
    }
    Ok(())
}

impl KvStore for DiskStore {
    fn get(&self, table: TableId, key: &[u8]) -> Option<Bytes> {
        self.state.get(table, key)
    }

    fn put(&self, table: TableId, key: &[u8], value: &[u8]) {
        self.log(OP_PUT, table, key, value);
        self.state.put(table, key, value);
    }

    fn append(&self, table: TableId, key: &[u8], value: &[u8]) {
        self.log(OP_APPEND, table, key, value);
        self.state.append(table, key, value);
    }

    fn delete(&self, table: TableId, key: &[u8]) -> bool {
        self.log(OP_DELETE, table, key, &[]);
        self.state.delete(table, key)
    }

    fn scan(&self, table: TableId) -> Vec<(Bytes, Bytes)> {
        self.state.scan(table)
    }

    fn table_len(&self, table: TableId) -> usize {
        self.state.table_len(table)
    }

    fn flush(&self) -> io::Result<()> {
        let mut w = self.writer.lock();
        w.file.flush()?;
        w.file.get_ref().sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(3);

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seqdet-disk-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn basic_ops_behave_like_memstore() {
        let dir = tmp_dir("basic");
        let s = DiskStore::open(&dir).unwrap();
        s.put(T, b"k", b"v");
        s.append(T, b"k", b"2");
        assert_eq!(s.get(T, b"k").unwrap().as_ref(), b"v2");
        assert!(s.delete(T, b"k"));
        assert!(s.get(T, b"k").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn state_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1");
            s.append(T, b"b", b"xy");
            s.append(T, b"b", b"z");
            s.put(T, b"gone", b"1");
            s.delete(T, b"gone");
            s.flush().unwrap();
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"xyz");
        assert!(s.get(T, b"gone").is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_reduces_segments_and_preserves_state() {
        let dir = tmp_dir("compact");
        {
            let s = DiskStore::open(&dir).unwrap();
            for i in 0..50u32 {
                s.append(T, b"k", &i.to_le_bytes());
            }
            s.flush().unwrap();
        }
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"x", b"y");
            s.flush().unwrap();
            assert!(s.num_segments().unwrap() >= 2);
            s.compact().unwrap();
            // snapshot + fresh active segment
            assert_eq!(s.num_segments().unwrap(), 2);
            assert_eq!(s.get(T, b"k").unwrap().len(), 200);
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"k").unwrap().len(), 200);
        assert_eq!(s.get(T, b"x").unwrap().as_ref(), b"y");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_after_compaction_survive_reopen() {
        let dir = tmp_dir("post-compact");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"a", b"1");
            s.compact().unwrap();
            s.put(T, b"b", b"2");
            s.flush().unwrap();
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"a").unwrap().as_ref(), b"1");
        assert_eq!(s.get(T, b"b").unwrap().as_ref(), b"2");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_record_is_ignored() {
        let dir = tmp_dir("torn");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"good", b"1");
            s.flush().unwrap();
        }
        // Corrupt: append half a record to the first segment.
        let seg = segment_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[0xAA, 0xBB, 0xCC, 0xDD, OP_PUT, 3, 10, 0, 0, 0]).unwrap(); // torn record
        drop(f);
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"good").unwrap().as_ref(), b"1");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_record_stops_replay_of_its_segment() {
        let dir = tmp_dir("crc");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"first", b"1");
            s.put(T, b"second", b"2");
            s.flush().unwrap();
        }
        // Flip one bit inside the SECOND record's value.
        let seg = segment_path(&dir, 0);
        let mut data = fs::read(&seg).unwrap();
        let len = data.len();
        data[len - 1] ^= 0x01;
        fs::write(&seg, &data).unwrap();
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"first").unwrap().as_ref(), b"1");
        assert!(s.get(T, b"second").is_none(), "corrupted record must not replay");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_keys_and_values_roundtrip() {
        let dir = tmp_dir("empty");
        {
            let s = DiskStore::open(&dir).unwrap();
            s.put(T, b"", b"");
            s.put(T, b"k", b"");
            s.flush().unwrap();
        }
        let s = DiskStore::open(&dir).unwrap();
        assert_eq!(s.get(T, b"").unwrap().len(), 0);
        assert_eq!(s.get(T, b"k").unwrap().len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
