//! Filesystem seam for the persistent store.
//!
//! [`DiskStore`](crate::DiskStore) performs every file operation through the
//! [`Vfs`] trait so the crash-consistency claims of the segment format can be
//! *tested*, not just argued: [`RealFs`] passes straight through to
//! `std::fs`, while [`FaultFs`] wraps the real filesystem and injects I/O
//! errors, short writes, and deterministic "crash after N bytes" cut-offs.
//!
//! The fault modes mirror the failures an append-only log actually meets:
//!
//! * **crash after N bytes** — the process dies mid-write: the byte prefix
//!   that fit under the budget reaches the file, the write returns an error,
//!   and *every* subsequent operation through the handle fails (a dead
//!   process issues no more I/O). Reopening the directory with a fresh
//!   [`RealFs`] then exercises recovery against exactly the bytes a real
//!   crash would have left behind.
//! * **write error after N calls** — ENOSPC-style: one write fails (with an
//!   optional short-write prefix reaching the file first), the filesystem
//!   stays alive. This is the mode that drives the store's sticky degraded
//!   state.
//! * **remove error after N calls** — a failed unlink during the
//!   compaction sweep, which must tolerate any subset of old segments
//!   surviving.

use parking_lot::Mutex;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// An open writable file handle behind the [`Vfs`] seam.
pub trait VfsFile: Send {
    /// Write all of `buf`, as `io::Write::write_all`.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Push any userspace buffer to the kernel (no durability implied).
    fn flush(&mut self) -> io::Result<()>;
    /// Flush and then fsync: all prior writes are durable on return.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The slice of filesystem behaviour the store depends on.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Create `path` and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Open `path` for appending, creating it if absent.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create (truncate) `path` for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read the full contents of `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Unlink `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsync the directory itself, making renames/unlinks in it durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) of the entries of `dir`. Entries whose names
    /// are not valid UTF-8 are skipped — the store only creates ASCII names.
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>>;
}

/// Pass-through [`Vfs`] over `std::fs`. Files opened for writing are
/// buffered (`BufWriter`), matching the store's historical write path.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

struct RealFile {
    inner: BufWriter<File>,
}

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.write_all(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.inner.flush()?;
        self.inner.get_ref().sync_all()
    }
}

impl Vfs for RealFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealFile { inner: BufWriter::new(file) }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile { inner: BufWriter::new(File::create(path)?) }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        Ok(data)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Ok(name) = entry?.file_name().into_string() {
                names.push(name);
            }
        }
        Ok(names)
    }
}

#[derive(Debug, Default)]
struct FaultState {
    /// Write-byte budget before a simulated crash. Once exhausted, the
    /// failing write persists only the prefix that fit and `crashed` flips.
    crash_after_bytes: Option<u64>,
    /// Successful `write_all` calls remaining before one injected error.
    fail_after_writes: Option<u64>,
    /// Bytes of the failing write that still reach the file (a short write).
    short_write: usize,
    /// Successful `remove_file` calls remaining before injected errors.
    fail_after_removes: Option<u64>,
    /// A simulated crash happened: every further operation fails.
    crashed: bool,
    /// Number of errors injected so far.
    injected: u64,
    /// Bytes successfully persisted across all files (torn prefixes
    /// included). Crash-at-every-offset tests read this to translate
    /// workload boundaries into write budgets — on-disk sizes no longer
    /// work once compaction rewrites and removes files.
    bytes_written: u64,
}

/// Fault-injecting [`Vfs`] wrapping the real filesystem.
///
/// Cloning shares the fault state, so tests keep a handle to arm faults
/// after the store has been opened. Files opened through `FaultFs` are
/// deliberately *unbuffered*: every record write issued by the store hits
/// the byte accounting directly, making crash offsets deterministic over
/// the actual byte stream.
#[derive(Debug, Clone, Default)]
pub struct FaultFs {
    state: Arc<Mutex<FaultState>>,
}

fn injected_error(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

impl FaultFs {
    /// Fault-free passthrough until a fault is armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a hard crash once `n` more bytes have been written (across all
    /// files). The failing write persists the prefix that fits; afterwards
    /// every operation fails.
    pub fn arm_crash_after_bytes(&self, n: u64) {
        self.state.lock().crash_after_bytes = Some(n);
    }

    /// Arm one injected write error after `n` more successful `write_all`
    /// calls. The filesystem stays alive afterwards.
    pub fn arm_fail_after_writes(&self, n: u64) {
        self.state.lock().fail_after_writes = Some(n);
    }

    /// When the next armed write error fires, let the first `k` bytes of the
    /// failing buffer reach the file (a short write).
    pub fn set_short_write(&self, k: usize) {
        self.state.lock().short_write = k;
    }

    /// Arm injected `remove_file` errors after `n` more successful removes.
    pub fn arm_fail_after_removes(&self, n: u64) {
        self.state.lock().fail_after_removes = Some(n);
    }

    /// Clear all armed faults and the crashed flag.
    pub fn heal(&self) {
        *self.state.lock() = FaultState::default();
    }

    /// True once a simulated crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Number of errors injected so far.
    pub fn injected_errors(&self) -> u64 {
        self.state.lock().injected
    }

    /// Total bytes persisted through this filesystem so far (counting torn
    /// crash prefixes).
    pub fn bytes_written(&self) -> u64 {
        self.state.lock().bytes_written
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.state.lock().crashed {
            Err(injected_error("process crashed"))
        } else {
            Ok(())
        }
    }
}

struct FaultFile {
    file: File,
    state: Arc<Mutex<FaultState>>,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(injected_error("process crashed"));
        }
        if let Some(budget) = st.crash_after_bytes {
            if (buf.len() as u64) > budget {
                st.crashed = true;
                st.injected += 1;
                st.bytes_written += budget;
                drop(st);
                // The prefix that fit under the budget reaches the file —
                // the torn write a real crash leaves behind.
                self.file.write_all(&buf[..budget as usize])?;
                return Err(injected_error("crash mid-write"));
            }
            st.crash_after_bytes = Some(budget - buf.len() as u64);
        }
        if let Some(n) = st.fail_after_writes {
            if n == 0 {
                let keep = st.short_write.min(buf.len());
                st.short_write = 0;
                st.injected += 1;
                st.bytes_written += keep as u64;
                drop(st);
                if keep > 0 {
                    self.file.write_all(&buf[..keep])?;
                }
                return Err(injected_error("write error"));
            }
            st.fail_after_writes = Some(n - 1);
        }
        st.bytes_written += buf.len() as u64;
        drop(st);
        self.file.write_all(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.state.lock().crashed {
            return Err(injected_error("process crashed"));
        }
        self.file.flush()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        if self.state.lock().crashed {
            return Err(injected_error("process crashed"));
        }
        self.file.sync_all()
    }
}

impl Vfs for FaultFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        fs::create_dir_all(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check_alive()?;
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(FaultFile { file, state: self.state.clone() }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check_alive()?;
        Ok(Box::new(FaultFile { file: File::create(path)?, state: self.state.clone() }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        RealFs.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check_alive()?;
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(injected_error("process crashed"));
        }
        if let Some(n) = st.fail_after_removes {
            if n == 0 {
                st.injected += 1;
                return Err(injected_error("remove error"));
            }
            st.fail_after_removes = Some(n - 1);
        }
        drop(st);
        fs::remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        RealFs.sync_dir(path)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.check_alive()?;
        RealFs.read_dir_names(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seqdet-vfs-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_fs_roundtrip() {
        let dir = tmp_dir("real");
        let path = dir.join("f");
        let mut f = RealFs.open_append(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(RealFs.read(&path).unwrap(), b"hello");
        let names = RealFs.read_dir_names(&dir).unwrap();
        assert_eq!(names, vec!["f".to_owned()]);
        RealFs.sync_dir(&dir).unwrap();
        RealFs.rename(&path, &dir.join("g")).unwrap();
        RealFs.remove_file(&dir.join("g")).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_after_bytes_persists_exact_prefix_then_kills_everything() {
        let dir = tmp_dir("crash");
        let path = dir.join("f");
        let fs_handle = FaultFs::new();
        let mut f = fs_handle.open_append(&path).unwrap();
        f.write_all(b"abcd").unwrap();
        fs_handle.arm_crash_after_bytes(6);
        f.write_all(b"efgh").unwrap(); // 4 <= 6: fits
        assert!(f.write_all(b"ijkl").is_err()); // 4 > 2: crash, 2 bytes land
        assert!(fs_handle.crashed());
        assert!(f.write_all(b"nope").is_err());
        assert!(f.sync_all().is_err());
        assert!(fs_handle.open_append(&path).is_err());
        assert!(fs_handle.read(&path).is_err());
        assert!(fs_handle.remove_file(&path).is_err());
        // The real bytes on disk are exactly the pre-crash prefix.
        assert_eq!(RealFs.read(&path).unwrap(), b"abcdefghij");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fail_after_writes_injects_one_error_and_stays_alive() {
        let dir = tmp_dir("enospc");
        let path = dir.join("f");
        let fs_handle = FaultFs::new();
        let mut f = fs_handle.open_append(&path).unwrap();
        fs_handle.arm_fail_after_writes(1);
        fs_handle.set_short_write(2);
        f.write_all(b"ok").unwrap();
        assert!(f.write_all(b"fail").is_err());
        assert!(!fs_handle.crashed());
        assert_eq!(fs_handle.injected_errors(), 1);
        // Short write: 2 bytes of the failing buffer landed; fs still alive.
        assert_eq!(fs_handle.read(&path).unwrap(), b"okfa");
        fs_handle.heal();
        f.write_all(b"more").unwrap();
        assert_eq!(fs_handle.read(&path).unwrap(), b"okfamore");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fail_after_removes_errors_without_crashing() {
        let dir = tmp_dir("rm");
        let a = dir.join("a");
        let b = dir.join("b");
        fs::write(&a, b"x").unwrap();
        fs::write(&b, b"y").unwrap();
        let fs_handle = FaultFs::new();
        fs_handle.arm_fail_after_removes(1);
        fs_handle.remove_file(&a).unwrap();
        assert!(fs_handle.remove_file(&b).is_err());
        assert!(!fs_handle.crashed());
        assert!(b.exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
