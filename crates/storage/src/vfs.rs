//! Filesystem seam for the persistent store.
//!
//! [`DiskStore`](crate::DiskStore) performs every file operation through the
//! [`Vfs`] trait so the crash-consistency claims of the segment format can be
//! *tested*, not just argued: [`RealFs`] passes straight through to
//! `std::fs`, while [`FaultFs`] wraps the real filesystem and injects I/O
//! errors, short writes, and deterministic "crash after N bytes" cut-offs.
//!
//! The fault modes mirror the failures an append-only log actually meets:
//!
//! * **crash after N bytes** — the process dies mid-write: the byte prefix
//!   that fit under the budget reaches the file, the write returns an error,
//!   and *every* subsequent operation through the handle fails (a dead
//!   process issues no more I/O). Reopening the directory with a fresh
//!   [`RealFs`] then exercises recovery against exactly the bytes a real
//!   crash would have left behind.
//! * **write error after N calls** — ENOSPC-style: one write fails (with an
//!   optional short-write prefix reaching the file first), the filesystem
//!   stays alive. This is the mode that drives the store's sticky degraded
//!   state.
//! * **remove error after N calls** — a failed unlink during the
//!   compaction sweep, which must tolerate any subset of old segments
//!   surviving.
//! * **transient errors for N ops** — interrupted-syscall-style failures
//!   that succeed when simply re-issued; the mode [`RetryVfs`] exists to
//!   absorb.
//! * **bit rot** — a read-time byte flip at an armed offset of a matching
//!   file: the on-disk bytes are fine, but every read through the seam
//!   returns damaged data, the way a failing disk or controller does. This
//!   is the mode that drives run quarantine.
//!
//! [`RetryVfs`] is the production-facing counterpart: a decorator over any
//! [`Vfs`] that retries *transient* failures (classified by
//! [`io_kind_is_transient`](crate::error::io_kind_is_transient)) with
//! bounded exponential backoff plus deterministic jitter, so an interrupted
//! syscall or momentary stall never reaches the degraded fuse.

use crate::error::io_kind_is_transient;
use parking_lot::Mutex;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// An open writable file handle behind the [`Vfs`] seam.
pub trait VfsFile: Send {
    /// Write all of `buf`, as `io::Write::write_all`.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Push any userspace buffer to the kernel (no durability implied).
    fn flush(&mut self) -> io::Result<()>;
    /// Flush and then fsync: all prior writes are durable on return.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The slice of filesystem behaviour the store depends on.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Create `path` and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Open `path` for appending, creating it if absent.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create (truncate) `path` for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read the full contents of `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Unlink `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsync the directory itself, making renames/unlinks in it durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) of the entries of `dir`. Entries whose names
    /// are not valid UTF-8 are skipped — the store only creates ASCII names.
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>>;
}

/// Pass-through [`Vfs`] over `std::fs`. Files opened for writing are
/// buffered (`BufWriter`), matching the store's historical write path.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

struct RealFile {
    inner: BufWriter<File>,
}

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.inner.write_all(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.inner.flush()?;
        self.inner.get_ref().sync_all()
    }
}

impl Vfs for RealFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealFile { inner: BufWriter::new(file) }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile { inner: BufWriter::new(File::create(path)?) }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        Ok(data)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            if let Ok(name) = entry?.file_name().into_string() {
                names.push(name);
            }
        }
        Ok(names)
    }
}

#[derive(Debug, Default)]
struct FaultState {
    /// Write-byte budget before a simulated crash. Once exhausted, the
    /// failing write persists only the prefix that fit and `crashed` flips.
    crash_after_bytes: Option<u64>,
    /// Successful `write_all` calls remaining before one injected error.
    fail_after_writes: Option<u64>,
    /// Bytes of the failing write that still reach the file (a short write).
    short_write: usize,
    /// Successful `remove_file` calls remaining before injected errors.
    fail_after_removes: Option<u64>,
    /// Remaining fallible operations that fail with a *transient* error
    /// (`ErrorKind::Interrupted`) before the filesystem behaves again.
    transient_ops: u64,
    /// Read-time bit rot: flip the byte at `.1` of every `read` of a file
    /// whose name contains `.0`. The on-disk bytes stay intact.
    bit_rot: Option<(String, usize)>,
    /// Number of reads the bit-rot mode has damaged so far.
    bit_rot_hits: u64,
    /// A simulated crash happened: every further operation fails.
    crashed: bool,
    /// Number of errors injected so far.
    injected: u64,
    /// Bytes successfully persisted across all files (torn prefixes
    /// included). Crash-at-every-offset tests read this to translate
    /// workload boundaries into write budgets — on-disk sizes no longer
    /// work once compaction rewrites and removes files.
    bytes_written: u64,
}

/// Fault-injecting [`Vfs`] wrapping the real filesystem.
///
/// Cloning shares the fault state, so tests keep a handle to arm faults
/// after the store has been opened. Files opened through `FaultFs` are
/// deliberately *unbuffered*: every record write issued by the store hits
/// the byte accounting directly, making crash offsets deterministic over
/// the actual byte stream.
#[derive(Debug, Clone, Default)]
pub struct FaultFs {
    state: Arc<Mutex<FaultState>>,
}

fn injected_error(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

fn injected_transient(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, format!("injected transient fault: {what}"))
}

impl FaultFs {
    /// Fault-free passthrough until a fault is armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a hard crash once `n` more bytes have been written (across all
    /// files). The failing write persists the prefix that fits; afterwards
    /// every operation fails.
    pub fn arm_crash_after_bytes(&self, n: u64) {
        self.state.lock().crash_after_bytes = Some(n);
    }

    /// Arm one injected write error after `n` more successful `write_all`
    /// calls. The filesystem stays alive afterwards.
    pub fn arm_fail_after_writes(&self, n: u64) {
        self.state.lock().fail_after_writes = Some(n);
    }

    /// When the next armed write error fires, let the first `k` bytes of the
    /// failing buffer reach the file (a short write).
    pub fn set_short_write(&self, k: usize) {
        self.state.lock().short_write = k;
    }

    /// Arm injected `remove_file` errors after `n` more successful removes.
    pub fn arm_fail_after_removes(&self, n: u64) {
        self.state.lock().fail_after_removes = Some(n);
    }

    /// Arm `n` transient failures: the next `n` fallible operations
    /// (writes, reads, opens, renames) fail with `ErrorKind::Interrupted`,
    /// then the filesystem behaves again — the failure a retry absorbs.
    pub fn arm_transient_errors(&self, n: u64) {
        self.state.lock().transient_ops = n;
    }

    /// Arm read-time bit rot: every `read` of a file whose name contains
    /// `name_fragment` comes back with the byte at `offset` flipped
    /// (XOR 0xFF). The bytes on disk are untouched — this models a failing
    /// disk surface or controller, and persists until [`FaultFs::heal`].
    pub fn arm_bit_rot(&self, name_fragment: &str, offset: usize) {
        let mut st = self.state.lock();
        st.bit_rot = Some((name_fragment.to_owned(), offset));
        st.bit_rot_hits = 0;
    }

    /// Number of reads the armed bit-rot mode has damaged so far.
    pub fn bit_rot_hits(&self) -> u64 {
        self.state.lock().bit_rot_hits
    }

    /// True when a transient-failure budget is still armed.
    pub fn transient_armed(&self) -> bool {
        self.state.lock().transient_ops > 0
    }

    /// Decrement the transient budget if armed; `Some(err)` when this
    /// operation should fail transiently.
    fn take_transient(&self, what: &str) -> Option<io::Error> {
        let mut st = self.state.lock();
        if st.transient_ops > 0 {
            st.transient_ops -= 1;
            st.injected += 1;
            Some(injected_transient(what))
        } else {
            None
        }
    }

    /// Clear all armed faults and the crashed flag.
    pub fn heal(&self) {
        *self.state.lock() = FaultState::default();
    }

    /// True once a simulated crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Number of errors injected so far.
    pub fn injected_errors(&self) -> u64 {
        self.state.lock().injected
    }

    /// Total bytes persisted through this filesystem so far (counting torn
    /// crash prefixes).
    pub fn bytes_written(&self) -> u64 {
        self.state.lock().bytes_written
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.state.lock().crashed {
            Err(injected_error("process crashed"))
        } else {
            Ok(())
        }
    }
}

struct FaultFile {
    file: File,
    state: Arc<Mutex<FaultState>>,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(injected_error("process crashed"));
        }
        if st.transient_ops > 0 {
            // Clean failure: no bytes land, so a retry is safe.
            st.transient_ops -= 1;
            st.injected += 1;
            return Err(injected_transient("write"));
        }
        if let Some(budget) = st.crash_after_bytes {
            if (buf.len() as u64) > budget {
                st.crashed = true;
                st.injected += 1;
                st.bytes_written += budget;
                drop(st);
                // The prefix that fit under the budget reaches the file —
                // the torn write a real crash leaves behind.
                self.file.write_all(&buf[..budget as usize])?;
                return Err(injected_error("crash mid-write"));
            }
            st.crash_after_bytes = Some(budget - buf.len() as u64);
        }
        if let Some(n) = st.fail_after_writes {
            if n == 0 {
                let keep = st.short_write.min(buf.len());
                st.short_write = 0;
                st.injected += 1;
                st.bytes_written += keep as u64;
                drop(st);
                if keep > 0 {
                    self.file.write_all(&buf[..keep])?;
                }
                return Err(injected_error("write error"));
            }
            st.fail_after_writes = Some(n - 1);
        }
        st.bytes_written += buf.len() as u64;
        drop(st);
        self.file.write_all(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.state.lock().crashed {
            return Err(injected_error("process crashed"));
        }
        self.file.flush()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        if self.state.lock().crashed {
            return Err(injected_error("process crashed"));
        }
        self.file.sync_all()
    }
}

impl Vfs for FaultFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        fs::create_dir_all(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check_alive()?;
        if let Some(e) = self.take_transient("open_append") {
            return Err(e);
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(FaultFile { file, state: self.state.clone() }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        self.check_alive()?;
        if let Some(e) = self.take_transient("create") {
            return Err(e);
        }
        Ok(Box::new(FaultFile { file: File::create(path)?, state: self.state.clone() }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        if let Some(e) = self.take_transient("read") {
            return Err(e);
        }
        let mut data = RealFs.read(path)?;
        let mut st = self.state.lock();
        if let Some((fragment, offset)) = st.bit_rot.as_ref() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.contains(fragment.as_str()) {
                if let Some(byte) = data.get_mut(*offset) {
                    *byte ^= 0xFF;
                    st.bit_rot_hits += 1;
                }
            }
        }
        Ok(data)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check_alive()?;
        if let Some(e) = self.take_transient("rename") {
            return Err(e);
        }
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        if st.crashed {
            return Err(injected_error("process crashed"));
        }
        if let Some(n) = st.fail_after_removes {
            if n == 0 {
                st.injected += 1;
                return Err(injected_error("remove error"));
            }
            st.fail_after_removes = Some(n - 1);
        }
        drop(st);
        fs::remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        RealFs.sync_dir(path)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.check_alive()?;
        RealFs.read_dir_names(dir)
    }
}

/// Backoff policy for [`RetryVfs`]: up to `retries` re-issues of a
/// transient failure, sleeping `base * 2^attempt` (capped at `cap`) plus
/// deterministic jitter between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of re-issues after the first failure.
    pub retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { retries: 3, base: Duration::from_millis(1), cap: Duration::from_millis(20) }
    }
}

/// SplitMix64 step — the deterministic jitter source. No RNG dependency:
/// a shared counter hashed through this gives well-spread, reproducible
/// jitter values.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// Sleep before retry number `attempt` (0-based): half the capped
    /// exponential step deterministically, plus jitter over the other half
    /// so concurrent retriers decorrelate.
    fn delay(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self
            .base
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.cap)
            .min(self.cap);
        let half = exp / 2;
        let jitter_span = half.as_nanos() as u64;
        let jitter = if jitter_span == 0 { 0 } else { splitmix64(salt) % (jitter_span + 1) };
        half + Duration::from_nanos(jitter)
    }
}

/// Shared retry bookkeeping between a [`RetryVfs`] and the [`RetryFile`]
/// handles it opens: the policy, a retry tally, a jitter sequence, and an
/// optional [`StoreMetrics`] to mirror retries into.
#[derive(Debug)]
struct RetryShared {
    policy: RetryPolicy,
    retries: AtomicU64,
    jitter_seq: AtomicU64,
    metrics: Mutex<Option<Arc<crate::metrics::StoreMetrics>>>,
}

impl RetryShared {
    /// Run `op`, re-issuing transient failures per the policy. Non-transient
    /// errors and budget exhaustion propagate the last error unchanged.
    fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if io_kind_is_transient(e.kind()) && attempt < self.policy.retries => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = self.metrics.lock().as_ref() {
                        m.record_io_retry();
                    }
                    let salt = self.jitter_seq.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.policy.delay(attempt, salt));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Decorator over any [`Vfs`] that absorbs *transient* I/O failures
/// (classified by [`io_kind_is_transient`]) with bounded exponential
/// backoff plus deterministic jitter. Permanent errors and corruption pass
/// through untouched — retrying them would only delay the degraded fuse or
/// re-read the same damaged bytes.
///
/// Retrying `write_all` through the seam is safe because a transient
/// failure is by definition clean: `std::io`'s `write_all` already absorbs
/// `Interrupted` mid-stream, so a transient error surfacing here means no
/// bytes of the failing call landed (the injected faults in [`FaultFs`]
/// uphold the same contract).
#[derive(Debug, Clone)]
pub struct RetryVfs {
    inner: Arc<dyn Vfs>,
    shared: Arc<RetryShared>,
}

impl RetryVfs {
    /// Wrap `inner` with the default policy.
    pub fn new(inner: Arc<dyn Vfs>) -> Self {
        Self::with_policy(inner, RetryPolicy::default())
    }

    /// Wrap `inner` with an explicit policy.
    pub fn with_policy(inner: Arc<dyn Vfs>, policy: RetryPolicy) -> Self {
        Self {
            inner,
            shared: Arc::new(RetryShared {
                policy,
                retries: AtomicU64::new(0),
                jitter_seq: AtomicU64::new(0),
                metrics: Mutex::new(None),
            }),
        }
    }

    /// Mirror every absorbed retry into `metrics` (as
    /// [`StoreMetrics::record_io_retry`]).
    pub fn set_metrics(&self, metrics: Arc<crate::metrics::StoreMetrics>) {
        *self.shared.metrics.lock() = Some(metrics);
    }

    /// Total transient failures absorbed so far (across all handles).
    pub fn retries(&self) -> u64 {
        self.shared.retries.load(Ordering::Relaxed)
    }
}

/// Writable handle opened through a [`RetryVfs`]; shares its policy and
/// retry tally.
struct RetryFile {
    inner: Box<dyn VfsFile>,
    shared: Arc<RetryShared>,
}

impl VfsFile for RetryFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let inner = &mut self.inner;
        self.shared.run(|| inner.write_all(buf))
    }

    fn flush(&mut self) -> io::Result<()> {
        let inner = &mut self.inner;
        self.shared.run(|| inner.flush())
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let inner = &mut self.inner;
        self.shared.run(|| inner.sync_all())
    }
}

impl Vfs for RetryVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.shared.run(|| self.inner.create_dir_all(path))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let inner = self.shared.run(|| self.inner.open_append(path))?;
        Ok(Box::new(RetryFile { inner, shared: self.shared.clone() }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let inner = self.shared.run(|| self.inner.create(path))?;
        Ok(Box::new(RetryFile { inner, shared: self.shared.clone() }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.shared.run(|| self.inner.read(path))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.shared.run(|| self.inner.rename(from, to))
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.shared.run(|| self.inner.remove_file(path))
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.shared.run(|| self.inner.sync_dir(path))
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.shared.run(|| self.inner.read_dir_names(dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seqdet-vfs-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_fs_roundtrip() {
        let dir = tmp_dir("real");
        let path = dir.join("f");
        let mut f = RealFs.open_append(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(RealFs.read(&path).unwrap(), b"hello");
        let names = RealFs.read_dir_names(&dir).unwrap();
        assert_eq!(names, vec!["f".to_owned()]);
        RealFs.sync_dir(&dir).unwrap();
        RealFs.rename(&path, &dir.join("g")).unwrap();
        RealFs.remove_file(&dir.join("g")).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_after_bytes_persists_exact_prefix_then_kills_everything() {
        let dir = tmp_dir("crash");
        let path = dir.join("f");
        let fs_handle = FaultFs::new();
        let mut f = fs_handle.open_append(&path).unwrap();
        f.write_all(b"abcd").unwrap();
        fs_handle.arm_crash_after_bytes(6);
        f.write_all(b"efgh").unwrap(); // 4 <= 6: fits
        assert!(f.write_all(b"ijkl").is_err()); // 4 > 2: crash, 2 bytes land
        assert!(fs_handle.crashed());
        assert!(f.write_all(b"nope").is_err());
        assert!(f.sync_all().is_err());
        assert!(fs_handle.open_append(&path).is_err());
        assert!(fs_handle.read(&path).is_err());
        assert!(fs_handle.remove_file(&path).is_err());
        // The real bytes on disk are exactly the pre-crash prefix.
        assert_eq!(RealFs.read(&path).unwrap(), b"abcdefghij");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fail_after_writes_injects_one_error_and_stays_alive() {
        let dir = tmp_dir("enospc");
        let path = dir.join("f");
        let fs_handle = FaultFs::new();
        let mut f = fs_handle.open_append(&path).unwrap();
        fs_handle.arm_fail_after_writes(1);
        fs_handle.set_short_write(2);
        f.write_all(b"ok").unwrap();
        assert!(f.write_all(b"fail").is_err());
        assert!(!fs_handle.crashed());
        assert_eq!(fs_handle.injected_errors(), 1);
        // Short write: 2 bytes of the failing buffer landed; fs still alive.
        assert_eq!(fs_handle.read(&path).unwrap(), b"okfa");
        fs_handle.heal();
        f.write_all(b"more").unwrap();
        assert_eq!(fs_handle.read(&path).unwrap(), b"okfamore");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fail_after_removes_errors_without_crashing() {
        let dir = tmp_dir("rm");
        let a = dir.join("a");
        let b = dir.join("b");
        fs::write(&a, b"x").unwrap();
        fs::write(&b, b"y").unwrap();
        let fs_handle = FaultFs::new();
        fs_handle.arm_fail_after_removes(1);
        fs_handle.remove_file(&a).unwrap();
        assert!(fs_handle.remove_file(&b).is_err());
        assert!(!fs_handle.crashed());
        assert!(b.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_errors_fail_cleanly_then_recover() {
        let dir = tmp_dir("transient");
        let path = dir.join("f");
        let fs_handle = FaultFs::new();
        let mut f = fs_handle.open_append(&path).unwrap();
        fs_handle.arm_transient_errors(2);
        assert!(fs_handle.transient_armed());
        // A transient write fails cleanly: no bytes land.
        let err = f.write_all(b"abcd").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        let err = fs_handle.read(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert!(!fs_handle.transient_armed());
        // Budget exhausted: the same operations now succeed.
        f.write_all(b"abcd").unwrap();
        assert_eq!(fs_handle.read(&path).unwrap(), b"abcd");
        assert!(!fs_handle.crashed());
        assert_eq!(fs_handle.injected_errors(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_rot_flips_one_read_byte_but_leaves_disk_intact() {
        let dir = tmp_dir("bitrot");
        let path = dir.join("run-000001-t001.run");
        fs::write(&path, b"hello").unwrap();
        let fs_handle = FaultFs::new();
        fs_handle.arm_bit_rot("run-000001", 1);
        let rotted = fs_handle.read(&path).unwrap();
        assert_eq!(rotted, [b'h', b'e' ^ 0xFF, b'l', b'l', b'o']);
        assert_eq!(fs_handle.bit_rot_hits(), 1);
        // Non-matching names and out-of-range offsets pass through clean.
        let other = dir.join("seg-000001.log");
        fs::write(&other, b"clean").unwrap();
        assert_eq!(fs_handle.read(&other).unwrap(), b"clean");
        fs_handle.arm_bit_rot("run-000001", 999);
        assert_eq!(fs_handle.read(&path).unwrap(), b"hello");
        assert_eq!(fs_handle.bit_rot_hits(), 0); // arm_bit_rot resets the tally
                                                 // The bytes on disk were never touched.
        assert_eq!(RealFs.read(&path).unwrap(), b"hello");
        fs_handle.heal();
        assert_eq!(fs_handle.read(&path).unwrap(), b"hello");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retry_vfs_absorbs_transient_faults() {
        let dir = tmp_dir("retry");
        let path = dir.join("f");
        let faults = FaultFs::new();
        let retry = RetryVfs::with_policy(
            Arc::new(faults.clone()),
            RetryPolicy {
                retries: 3,
                base: Duration::from_micros(10),
                cap: Duration::from_micros(50),
            },
        );
        let metrics = Arc::new(crate::metrics::StoreMetrics::new());
        retry.set_metrics(metrics.clone());

        let mut f = retry.open_append(&path).unwrap();
        faults.arm_transient_errors(2);
        // Two injected transients absorbed inside one logical write.
        f.write_all(b"payload").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(retry.retries(), 2);
        assert_eq!(metrics.io_retries(), 2);
        assert_eq!(retry.read(&path).unwrap(), b"payload");

        // Also absorbed on the read path.
        faults.arm_transient_errors(1);
        assert_eq!(retry.read(&path).unwrap(), b"payload");
        assert_eq!(retry.retries(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retry_vfs_exhausts_budget_and_passes_permanent_errors_through() {
        let dir = tmp_dir("retry-limits");
        let path = dir.join("f");
        let faults = FaultFs::new();
        let retry = RetryVfs::with_policy(
            Arc::new(faults.clone()),
            RetryPolicy {
                retries: 2,
                base: Duration::from_micros(10),
                cap: Duration::from_micros(50),
            },
        );

        // More transients than the budget: the last error surfaces.
        faults.arm_transient_errors(10);
        let err = retry.read(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(retry.retries(), 2);
        faults.heal();

        // Permanent errors are not retried at all.
        let mut f = retry.open_append(&path).unwrap();
        faults.arm_fail_after_writes(0);
        let before = retry.retries();
        assert!(f.write_all(b"x").is_err());
        assert_eq!(retry.retries(), before);
        // heal() zeroed the tally; only the permanent write error remains.
        assert_eq!(faults.injected_errors(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retry_policy_delay_is_bounded_and_jittered() {
        let p = RetryPolicy::default();
        for attempt in 0..40 {
            for salt in 0..8 {
                let d = p.delay(attempt, salt);
                assert!(d <= p.cap, "attempt {attempt} salt {salt}: {d:?}");
            }
        }
        // Jitter decorrelates equal attempts with different salts.
        let spread: std::collections::HashSet<_> =
            (0..16).map(|salt| RetryPolicy::default().delay(3, salt)).collect();
        assert!(spread.len() > 1, "jitter produced identical delays");
    }
}
