//! Operation counters for store instrumentation.
//!
//! Benchmarks and the ablation experiments use these to report how many
//! store round-trips each indexing flavor / query plan performs — the
//! paper's cost driver once Cassandra is remote.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters over store operations. All methods are lock-free and
/// safe to call from any thread.
///
/// Beyond the raw store round-trips, the query read path reports its
/// decode/cache behaviour here as well: how many postings were walked
/// zero-copy through a cursor, how many rows went through the slow
/// `Vec`-materializing decoder, and how the query-side posting cache fared.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    gets: AtomicU64,
    puts: AtomicU64,
    appends: AtomicU64,
    deletes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    cursor_decodes: AtomicU64,
    slow_decodes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    cache_invalidations: AtomicU64,
}

impl StoreMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_get(&self, bytes: usize) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_put(&self, bytes: usize) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_append(&self, bytes: usize) {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_delete(&self) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `postings` records decoded zero-copy through a cursor.
    pub fn record_cursor_decode(&self, postings: usize) {
        self.cursor_decodes.fetch_add(postings as u64, Ordering::Relaxed);
    }

    /// Record one row decoded through the slow `Vec`-materializing path.
    pub fn record_slow_decode(&self) {
        self.slow_decodes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a posting-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a posting-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a posting-cache capacity eviction.
    pub fn record_cache_eviction(&self) {
        self.cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a posting-cache entry dropped as stale (generation change).
    pub fn record_cache_invalidation(&self) {
        self.cache_invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of `get` calls.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    /// Number of `put` calls.
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }

    /// Number of `append` calls.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Number of `delete` calls.
    pub fn deletes(&self) -> u64 {
        self.deletes.load(Ordering::Relaxed)
    }

    /// Total bytes returned by `get`s.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes accepted by `put`/`append`.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Postings decoded zero-copy through a [`PostingCursor`]-style cursor.
    pub fn cursor_decodes(&self) -> u64 {
        self.cursor_decodes.load(Ordering::Relaxed)
    }

    /// Rows decoded through the slow `Vec`-materializing path.
    pub fn slow_decodes(&self) -> u64 {
        self.slow_decodes.load(Ordering::Relaxed)
    }

    /// Posting-cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Posting-cache misses.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Posting-cache capacity evictions.
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions.load(Ordering::Relaxed)
    }

    /// Posting-cache entries dropped as stale after an index update.
    pub fn cache_invalidations(&self) -> u64 {
        self.cache_invalidations.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.gets.store(0, Ordering::Relaxed);
        self.puts.store(0, Ordering::Relaxed);
        self.appends.store(0, Ordering::Relaxed);
        self.deletes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.cursor_decodes.store(0, Ordering::Relaxed);
        self.slow_decodes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
        self.cache_invalidations.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = StoreMetrics::new();
        m.record_get(10);
        m.record_get(5);
        m.record_put(100);
        m.record_append(7);
        m.record_delete();
        assert_eq!(m.gets(), 2);
        assert_eq!(m.puts(), 1);
        assert_eq!(m.appends(), 1);
        assert_eq!(m.deletes(), 1);
        assert_eq!(m.bytes_read(), 15);
        assert_eq!(m.bytes_written(), 107);
        m.reset();
        assert_eq!(m.gets() + m.puts() + m.appends() + m.bytes_read(), 0);
    }
}
