//! Operation counters for store instrumentation.
//!
//! Benchmarks and the ablation experiments use these to report how many
//! store round-trips each indexing flavor / query plan performs — the
//! paper's cost driver once Cassandra is remote.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters over store operations. All methods are lock-free and
/// safe to call from any thread.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    gets: AtomicU64,
    puts: AtomicU64,
    appends: AtomicU64,
    deletes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl StoreMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_get(&self, bytes: usize) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_put(&self, bytes: usize) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_append(&self, bytes: usize) {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_delete(&self) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of `get` calls.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    /// Number of `put` calls.
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }

    /// Number of `append` calls.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Number of `delete` calls.
    pub fn deletes(&self) -> u64 {
        self.deletes.load(Ordering::Relaxed)
    }

    /// Total bytes returned by `get`s.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes accepted by `put`/`append`.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.gets.store(0, Ordering::Relaxed);
        self.puts.store(0, Ordering::Relaxed);
        self.appends.store(0, Ordering::Relaxed);
        self.deletes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = StoreMetrics::new();
        m.record_get(10);
        m.record_get(5);
        m.record_put(100);
        m.record_append(7);
        m.record_delete();
        assert_eq!(m.gets(), 2);
        assert_eq!(m.puts(), 1);
        assert_eq!(m.appends(), 1);
        assert_eq!(m.deletes(), 1);
        assert_eq!(m.bytes_read(), 15);
        assert_eq!(m.bytes_written(), 107);
        m.reset();
        assert_eq!(m.gets() + m.puts() + m.appends() + m.bytes_read(), 0);
    }
}
