//! Operation counters for store instrumentation.
//!
//! Benchmarks and the ablation experiments use these to report how many
//! store round-trips each indexing flavor / query plan performs — the
//! paper's cost driver once Cassandra is remote.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Number of power-of-two latency buckets (covers 1µs … ~2^47µs ≈ 4.5 years).
const LATENCY_BUCKETS: usize = 48;

/// A lock-free fixed-bucket latency histogram.
///
/// Samples are recorded in microseconds into power-of-two buckets: bucket
/// `i` counts samples in `[2^i, 2^(i+1))`. Percentile estimates return the
/// *upper edge* of the bucket holding the requested quantile, so they are
/// conservative (never under-report) and at most 2x the true value — plenty
/// for the p50/p95/p99 the serving layer exports.
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Fresh zeroed histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample, in microseconds.
    pub fn record_micros(&self, micros: u64) {
        let idx = (63 - micros.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean sample, in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed).checked_div(self.count()).unwrap_or(0)
    }

    /// Upper-edge estimate of quantile `q` (`0.0 ..= 1.0`), in microseconds.
    /// Returns 0 when no samples have been recorded.
    pub fn percentile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << 63
    }

    /// Reset all buckets to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_micros.store(0, Ordering::Relaxed);
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("p50_us", &self.percentile_micros(0.50))
            .field("p99_us", &self.percentile_micros(0.99))
            .finish()
    }
}

/// Per-request serving-layer counters: request volume, status classes, load
/// shedding, accept-loop retries, in-flight gauge and a latency histogram.
/// Lives inside [`StoreMetrics`] so the server shares one metrics handle
/// with the store/cache plumbing and `GET /stats/server` sits next to
/// `/stats/cache`.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    requests: AtomicU64,
    resp_2xx: AtomicU64,
    resp_3xx: AtomicU64,
    resp_4xx: AtomicU64,
    resp_5xx: AtomicU64,
    shed: AtomicU64,
    accept_retries: AtomicU64,
    catalog_reloads: AtomicU64,
    in_flight: AtomicU64,
    latency: LatencyHistogram,
}

impl ServerMetrics {
    /// Mark a request as started (bumps request count and in-flight gauge).
    pub fn record_request_start(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark a request as finished with `status`, taking `micros` end to end.
    pub fn record_response(&self, status: u16, micros: u64) {
        let class = match status / 100 {
            2 => &self.resp_2xx,
            3 => &self.resp_3xx,
            4 => &self.resp_4xx,
            _ => &self.resp_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        self.latency.record_micros(micros);
        // Saturating decrement: a response recorded without a matching start
        // (e.g. an early 503 shed path) must not wrap the gauge.
        let _ =
            self.in_flight.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Record one connection shed with a 503 because the queue was full.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one transient `accept()` error survived with a backoff.
    pub fn record_accept_retry(&self) {
        self.accept_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one generation-triggered catalog/layout reload.
    pub fn record_catalog_reload(&self) {
        self.catalog_reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests started.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Responses by status class: `(2xx, 3xx, 4xx, 5xx)`.
    pub fn status_classes(&self) -> (u64, u64, u64, u64) {
        (
            self.resp_2xx.load(Ordering::Relaxed),
            self.resp_3xx.load(Ordering::Relaxed),
            self.resp_4xx.load(Ordering::Relaxed),
            self.resp_5xx.load(Ordering::Relaxed),
        )
    }

    /// Connections shed with a 503.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Transient accept errors survived.
    pub fn accept_retries(&self) -> u64 {
        self.accept_retries.load(Ordering::Relaxed)
    }

    /// Generation-triggered catalog reloads observed.
    pub fn catalog_reloads(&self) -> u64 {
        self.catalog_reloads.load(Ordering::Relaxed)
    }

    /// Requests currently being processed.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// The request latency histogram.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.resp_2xx.store(0, Ordering::Relaxed);
        self.resp_3xx.store(0, Ordering::Relaxed);
        self.resp_4xx.store(0, Ordering::Relaxed);
        self.resp_5xx.store(0, Ordering::Relaxed);
        self.shed.store(0, Ordering::Relaxed);
        self.accept_retries.store(0, Ordering::Relaxed);
        self.catalog_reloads.store(0, Ordering::Relaxed);
        self.in_flight.store(0, Ordering::Relaxed);
        self.latency.reset();
    }
}

/// Monotonic counters over store operations. All methods are lock-free and
/// safe to call from any thread.
///
/// Beyond the raw store round-trips, the query read path reports its
/// decode/cache behaviour here as well: how many postings were walked
/// zero-copy through a cursor, how many rows went through the slow
/// `Vec`-materializing decoder, and how the query-side posting cache fared.
/// The serving layer adds its per-request counters under [`ServerMetrics`]
/// (see [`StoreMetrics::server`]).
#[derive(Debug, Default)]
pub struct StoreMetrics {
    gets: AtomicU64,
    puts: AtomicU64,
    appends: AtomicU64,
    deletes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    cursor_decodes: AtomicU64,
    slow_decodes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_hits_v1: AtomicU64,
    cache_hits_v2: AtomicU64,
    cache_misses_v1: AtomicU64,
    cache_misses_v2: AtomicU64,
    cache_evictions: AtomicU64,
    cache_invalidations: AtomicU64,
    decoded_bytes: AtomicU64,
    batch_commits: AtomicU64,
    batch_aborts: AtomicU64,
    fsyncs: AtomicU64,
    runs_written: AtomicU64,
    runs_live: AtomicU64,
    run_bytes_written: AtomicU64,
    run_compactions: AtomicU64,
    runs_pruned: AtomicU64,
    runs_searched: AtomicU64,
    runs_expired: AtomicU64,
    runs_quarantined: AtomicU64,
    quarantined_live: AtomicU64,
    runs_repaired: AtomicU64,
    scrub_passes: AtomicU64,
    io_retries: AtomicU64,
    degraded: AtomicBool,
    server: ServerMetrics,
}

impl StoreMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_get(&self, bytes: usize) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_put(&self, bytes: usize) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_append(&self, bytes: usize) {
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_delete(&self) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `postings` records decoded zero-copy through a cursor.
    pub fn record_cursor_decode(&self, postings: usize) {
        self.cursor_decodes.fetch_add(postings as u64, Ordering::Relaxed);
    }

    /// Record one row decoded through the slow `Vec`-materializing path.
    pub fn record_slow_decode(&self) {
        self.slow_decodes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a posting-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a posting-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Attribute a posting-cache hit to a row format (`v2` selects the
    /// block-compressed format, otherwise v1). Storage cannot see the core
    /// crate's `PostingFormat` enum, so the split is a plain flag here; the
    /// query-side cache records both the total and the attribution.
    pub fn record_format_cache_hit(&self, v2: bool) {
        let c = if v2 { &self.cache_hits_v2 } else { &self.cache_hits_v1 };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Attribute a posting-cache miss to a row format (see
    /// [`StoreMetrics::record_format_cache_hit`]).
    pub fn record_format_cache_miss(&self, v2: bool) {
        let c = if v2 { &self.cache_misses_v2 } else { &self.cache_misses_v1 };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `bytes` of stored posting rows expanded into decoded postings
    /// by a cache-miss read.
    pub fn record_decoded_bytes(&self, bytes: usize) {
        self.decoded_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record a posting-cache capacity eviction.
    pub fn record_cache_eviction(&self) {
        self.cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a posting-cache entry dropped as stale (generation change).
    pub fn record_cache_invalidation(&self) {
        self.cache_invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one committed write batch.
    pub fn record_batch_commit(&self) {
        self.batch_commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one aborted (or commit-failed) write batch.
    pub fn record_batch_abort(&self) {
        self.batch_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one fsync issued by the store's write path.
    pub fn record_fsync(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one compaction that rewrote the immutable tier, emitting
    /// `runs` run files totalling `bytes` on disk.
    pub fn record_run_compaction(&self, runs: usize, bytes: u64) {
        self.run_compactions.fetch_add(1, Ordering::Relaxed);
        self.runs_written.fetch_add(runs as u64, Ordering::Relaxed);
        self.run_bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Set the gauge of currently live (manifest-referenced) runs.
    pub fn set_runs_live(&self, live: usize) {
        self.runs_live.store(live as u64, Ordering::Relaxed);
    }

    /// Record one run skipped by its zone map during a membership check.
    pub fn record_run_pruned(&self) {
        self.runs_pruned.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one run whose zone map covered the probed key (so the read
    /// had to consult it).
    pub fn record_run_searched(&self) {
        self.runs_searched.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` runs dropped by retention because their whole time range
    /// had expired.
    pub fn record_runs_expired(&self, n: usize) {
        self.runs_expired.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Record one run pulled from the searched set after failing
    /// verification (corruption quarantine).
    pub fn record_run_quarantined(&self) {
        self.runs_quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Set the gauge of currently quarantined runs.
    pub fn set_quarantined_live(&self, live: usize) {
        self.quarantined_live.store(live as u64, Ordering::Relaxed);
    }

    /// Record `n` quarantined runs rebuilt from the segment log by
    /// `repair()`.
    pub fn record_runs_repaired(&self, n: usize) {
        self.runs_repaired.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Record one completed scrub pass over the run tier.
    pub fn record_scrub_pass(&self) {
        self.scrub_passes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one transient I/O failure absorbed by a retry.
    pub fn record_io_retry(&self) {
        self.io_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark the store as degraded (sticky read-only after a write failure).
    pub fn set_degraded(&self, degraded: bool) {
        self.degraded.store(degraded, Ordering::Relaxed);
    }

    /// Number of `get` calls.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    /// Number of `put` calls.
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }

    /// Number of `append` calls.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Number of `delete` calls.
    pub fn deletes(&self) -> u64 {
        self.deletes.load(Ordering::Relaxed)
    }

    /// Total bytes returned by `get`s.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes accepted by `put`/`append`.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Postings decoded zero-copy through a [`PostingCursor`]-style cursor.
    pub fn cursor_decodes(&self) -> u64 {
        self.cursor_decodes.load(Ordering::Relaxed)
    }

    /// Rows decoded through the slow `Vec`-materializing path.
    pub fn slow_decodes(&self) -> u64 {
        self.slow_decodes.load(Ordering::Relaxed)
    }

    /// Posting-cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Posting-cache misses.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Posting-cache hits attributed to v1 rows.
    pub fn cache_hits_v1(&self) -> u64 {
        self.cache_hits_v1.load(Ordering::Relaxed)
    }

    /// Posting-cache hits attributed to v2 (block-compressed) rows.
    pub fn cache_hits_v2(&self) -> u64 {
        self.cache_hits_v2.load(Ordering::Relaxed)
    }

    /// Posting-cache misses attributed to v1 rows.
    pub fn cache_misses_v1(&self) -> u64 {
        self.cache_misses_v1.load(Ordering::Relaxed)
    }

    /// Posting-cache misses attributed to v2 (block-compressed) rows.
    pub fn cache_misses_v2(&self) -> u64 {
        self.cache_misses_v2.load(Ordering::Relaxed)
    }

    /// Bytes of stored posting rows decoded by cache-miss reads.
    pub fn decoded_bytes(&self) -> u64 {
        self.decoded_bytes.load(Ordering::Relaxed)
    }

    /// Posting-cache capacity evictions.
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions.load(Ordering::Relaxed)
    }

    /// Posting-cache entries dropped as stale after an index update.
    pub fn cache_invalidations(&self) -> u64 {
        self.cache_invalidations.load(Ordering::Relaxed)
    }

    /// Write batches committed.
    pub fn batch_commits(&self) -> u64 {
        self.batch_commits.load(Ordering::Relaxed)
    }

    /// Write batches aborted (including failed commits).
    pub fn batch_aborts(&self) -> u64 {
        self.batch_aborts.load(Ordering::Relaxed)
    }

    /// Fsyncs issued by the store's write path.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Run files written by compactions.
    pub fn runs_written(&self) -> u64 {
        self.runs_written.load(Ordering::Relaxed)
    }

    /// Currently live (manifest-referenced) runs.
    pub fn runs_live(&self) -> u64 {
        self.runs_live.load(Ordering::Relaxed)
    }

    /// Bytes of run files written by compactions.
    pub fn run_bytes_written(&self) -> u64 {
        self.run_bytes_written.load(Ordering::Relaxed)
    }

    /// Compactions that rewrote the immutable tier.
    pub fn run_compactions(&self) -> u64 {
        self.run_compactions.load(Ordering::Relaxed)
    }

    /// Runs skipped outright by zone-map pruning.
    pub fn runs_pruned(&self) -> u64 {
        self.runs_pruned.load(Ordering::Relaxed)
    }

    /// Runs whose zone map covered a probed key.
    pub fn runs_searched(&self) -> u64 {
        self.runs_searched.load(Ordering::Relaxed)
    }

    /// Runs dropped by retention.
    pub fn runs_expired(&self) -> u64 {
        self.runs_expired.load(Ordering::Relaxed)
    }

    /// Runs quarantined after failing verification (cumulative).
    pub fn runs_quarantined(&self) -> u64 {
        self.runs_quarantined.load(Ordering::Relaxed)
    }

    /// Currently quarantined runs.
    pub fn quarantined_live(&self) -> u64 {
        self.quarantined_live.load(Ordering::Relaxed)
    }

    /// Quarantined runs rebuilt from segments by `repair()`.
    pub fn runs_repaired(&self) -> u64 {
        self.runs_repaired.load(Ordering::Relaxed)
    }

    /// Completed scrub passes over the run tier.
    pub fn scrub_passes(&self) -> u64 {
        self.scrub_passes.load(Ordering::Relaxed)
    }

    /// Transient I/O failures absorbed by retries.
    pub fn io_retries(&self) -> u64 {
        self.io_retries.load(Ordering::Relaxed)
    }

    /// True once the store reported itself degraded.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The serving-layer counters (request count, status classes, latency,
    /// in-flight, shed).
    pub fn server(&self) -> &ServerMetrics {
        &self.server
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.gets.store(0, Ordering::Relaxed);
        self.puts.store(0, Ordering::Relaxed);
        self.appends.store(0, Ordering::Relaxed);
        self.deletes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.cursor_decodes.store(0, Ordering::Relaxed);
        self.slow_decodes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_hits_v1.store(0, Ordering::Relaxed);
        self.cache_hits_v2.store(0, Ordering::Relaxed);
        self.cache_misses_v1.store(0, Ordering::Relaxed);
        self.cache_misses_v2.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
        self.cache_invalidations.store(0, Ordering::Relaxed);
        self.decoded_bytes.store(0, Ordering::Relaxed);
        self.batch_commits.store(0, Ordering::Relaxed);
        self.batch_aborts.store(0, Ordering::Relaxed);
        self.fsyncs.store(0, Ordering::Relaxed);
        self.runs_written.store(0, Ordering::Relaxed);
        self.runs_live.store(0, Ordering::Relaxed);
        self.run_bytes_written.store(0, Ordering::Relaxed);
        self.run_compactions.store(0, Ordering::Relaxed);
        self.runs_pruned.store(0, Ordering::Relaxed);
        self.runs_searched.store(0, Ordering::Relaxed);
        self.runs_expired.store(0, Ordering::Relaxed);
        self.runs_quarantined.store(0, Ordering::Relaxed);
        self.quarantined_live.store(0, Ordering::Relaxed);
        self.runs_repaired.store(0, Ordering::Relaxed);
        self.scrub_passes.store(0, Ordering::Relaxed);
        self.io_retries.store(0, Ordering::Relaxed);
        self.degraded.store(false, Ordering::Relaxed);
        self.server.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = StoreMetrics::new();
        m.record_get(10);
        m.record_get(5);
        m.record_put(100);
        m.record_append(7);
        m.record_delete();
        assert_eq!(m.gets(), 2);
        assert_eq!(m.puts(), 1);
        assert_eq!(m.appends(), 1);
        assert_eq!(m.deletes(), 1);
        assert_eq!(m.bytes_read(), 15);
        assert_eq!(m.bytes_written(), 107);
        m.reset();
        assert_eq!(m.gets() + m.puts() + m.appends() + m.bytes_read(), 0);
    }

    #[test]
    fn per_format_cache_and_decode_counters() {
        let m = StoreMetrics::new();
        m.record_format_cache_hit(false);
        m.record_format_cache_hit(true);
        m.record_format_cache_hit(true);
        m.record_format_cache_miss(false);
        m.record_format_cache_miss(true);
        m.record_decoded_bytes(100);
        m.record_decoded_bytes(28);
        assert_eq!(m.cache_hits_v1(), 1);
        assert_eq!(m.cache_hits_v2(), 2);
        assert_eq!(m.cache_misses_v1(), 1);
        assert_eq!(m.cache_misses_v2(), 1);
        assert_eq!(m.decoded_bytes(), 128);
        m.reset();
        assert_eq!(
            m.cache_hits_v1()
                + m.cache_hits_v2()
                + m.cache_misses_v1()
                + m.cache_misses_v2()
                + m.decoded_bytes(),
            0
        );
    }

    #[test]
    fn batch_and_degraded_counters() {
        let m = StoreMetrics::new();
        m.record_batch_commit();
        m.record_batch_commit();
        m.record_batch_abort();
        m.record_fsync();
        m.set_degraded(true);
        assert_eq!(m.batch_commits(), 2);
        assert_eq!(m.batch_aborts(), 1);
        assert_eq!(m.fsyncs(), 1);
        assert!(m.degraded());
        m.reset();
        assert_eq!(m.batch_commits() + m.batch_aborts() + m.fsyncs(), 0);
        assert!(!m.degraded());
    }

    #[test]
    fn run_tier_counters() {
        let m = StoreMetrics::new();
        m.record_run_compaction(3, 4096);
        m.record_run_compaction(2, 1024);
        m.set_runs_live(2);
        m.record_run_pruned();
        m.record_run_pruned();
        m.record_run_searched();
        m.record_runs_expired(1);
        assert_eq!(m.run_compactions(), 2);
        assert_eq!(m.runs_written(), 5);
        assert_eq!(m.run_bytes_written(), 5120);
        assert_eq!(m.runs_live(), 2);
        assert_eq!(m.runs_pruned(), 2);
        assert_eq!(m.runs_searched(), 1);
        assert_eq!(m.runs_expired(), 1);
        m.reset();
        assert_eq!(
            m.run_compactions()
                + m.runs_written()
                + m.run_bytes_written()
                + m.runs_live()
                + m.runs_pruned()
                + m.runs_searched()
                + m.runs_expired(),
            0
        );
    }

    #[test]
    fn failure_tolerance_counters() {
        let m = StoreMetrics::new();
        m.record_run_quarantined();
        m.record_run_quarantined();
        m.set_quarantined_live(2);
        m.record_runs_repaired(2);
        m.record_scrub_pass();
        m.record_io_retry();
        m.record_io_retry();
        m.record_io_retry();
        assert_eq!(m.runs_quarantined(), 2);
        assert_eq!(m.quarantined_live(), 2);
        assert_eq!(m.runs_repaired(), 2);
        assert_eq!(m.scrub_passes(), 1);
        assert_eq!(m.io_retries(), 3);
        m.reset();
        assert_eq!(
            m.runs_quarantined()
                + m.quarantined_live()
                + m.runs_repaired()
                + m.scrub_passes()
                + m.io_retries(),
            0
        );
    }

    #[test]
    fn latency_histogram_percentiles_are_conservative() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_micros(0.5), 0);
        for _ in 0..90 {
            h.record_micros(100); // bucket [64, 128)
        }
        for _ in 0..10 {
            h.record_micros(10_000); // bucket [8192, 16384)
        }
        assert_eq!(h.count(), 100);
        // Upper edges: p50 lands in the 100µs bucket, p99 in the 10ms one.
        assert_eq!(h.percentile_micros(0.50), 128);
        assert_eq!(h.percentile_micros(0.90), 128);
        assert_eq!(h.percentile_micros(0.99), 16_384);
        assert!(h.mean_micros() >= 100 && h.mean_micros() <= 10_000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_micros(0.99), 0);
    }

    #[test]
    fn latency_histogram_handles_extremes() {
        let h = LatencyHistogram::new();
        h.record_micros(0);
        h.record_micros(1);
        h.record_micros(u64::MAX);
        assert_eq!(h.count(), 3);
        assert!(h.percentile_micros(1.0) >= 1 << 47);
    }

    #[test]
    fn server_metrics_track_requests_and_classes() {
        let m = StoreMetrics::new();
        let s = m.server();
        s.record_request_start();
        assert_eq!(s.in_flight(), 1);
        s.record_response(200, 50);
        s.record_request_start();
        s.record_response(404, 10);
        s.record_shed();
        s.record_accept_retry();
        s.record_catalog_reload();
        assert_eq!(s.requests(), 2);
        assert_eq!(s.status_classes(), (1, 0, 1, 0));
        assert_eq!(s.shed(), 1);
        assert_eq!(s.accept_retries(), 1);
        assert_eq!(s.catalog_reloads(), 1);
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.latency().count(), 2);
        // An unmatched response (503 shed path) must not wrap the gauge.
        s.record_response(503, 5);
        assert_eq!(s.in_flight(), 0);
        assert_eq!(s.status_classes().3, 1);
        m.reset();
        assert_eq!(s.requests() + s.shed() + s.latency().count(), 0);
    }
}
