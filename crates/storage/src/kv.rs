//! The [`KvStore`] abstraction the index tables are built on.
//!
//! Mirrors the slice of the Cassandra API the paper's system actually uses:
//! key-addressed rows per table, whole-row reads, and append-style writes to
//! grow a row's value list.

use crate::error::StorageError;
use bytes::Bytes;

/// Identifies one logical table within a store.
///
/// The paper's schema needs five tables (`Seq`, `Index`, `Count`,
/// `ReverseCount`, `LastChecked`); ids are small integers so that backends
/// can use them as array indices. Up to 256 tables are supported, which also
/// leaves room for the per-period `Index` partitions of §3.1.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u8);

impl TableId {
    /// Raw id as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How much of the acknowledged data a store's answers currently reflect.
///
/// `Full` is the healthy state: every read sees everything that was ever
/// acknowledged. A store narrows itself when corruption quarantines part of
/// its persisted state — reads keep working against the surviving data, but
/// answers may be missing rows the quarantined unit held, and callers
/// (query results, `/health`) surface that honestly instead of failing or
/// silently under-reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Coverage {
    /// Answers reflect all acknowledged data.
    Full,
    /// Part of the persisted state is quarantined: answers are correct over
    /// the surviving data but may be incomplete for the listed tables.
    Narrowed {
        /// Tables the quarantined units held keys for.
        quarantined_tables: Vec<TableId>,
        /// Human-readable reason (first quarantine event's diagnosis).
        reason: String,
    },
}

impl Coverage {
    /// True in the healthy (`Full`) state.
    pub fn is_full(&self) -> bool {
        matches!(self, Coverage::Full)
    }
}

/// The healthy state is the default, so result types carrying a coverage
/// annotation can keep deriving `Default`.
impl Default for Coverage {
    fn default() -> Self {
        Coverage::Full
    }
}

/// A key-value table store.
///
/// All operations are atomic per key. `append` is the workhorse: it extends
/// the value of `key` by `value` bytes in (amortized) time proportional to
/// `value.len()` — *not* to the current row size — which is what makes
/// posting-list maintenance cheap.
///
/// Reads are infallible (they are served from memory in every backend);
/// writes return [`StorageError`] so a persistent backend can report I/O
/// failures instead of panicking, and refuse writes once degraded.
///
/// The batch methods frame a group of cross-table mutations as one crash
/// atom: after [`begin_batch`](KvStore::begin_batch), none of the batch's
/// writes survive a crash unless the matching
/// [`commit_batch`](KvStore::commit_batch) was reached. Memory backends
/// (and any backend without durability) treat them as no-ops.
pub trait KvStore: Send + Sync {
    /// Read the full value of `key`, if present. The returned [`Bytes`] is a
    /// cheap reference-counted view; callers may hold it across writes (the
    /// store copies-on-append when a row is shared).
    fn get(&self, table: TableId, key: &[u8]) -> Option<Bytes>;

    /// Replace the value of `key`.
    fn put(&self, table: TableId, key: &[u8], value: &[u8]) -> Result<(), StorageError>;

    /// Append `value` to the row of `key`, creating it if absent.
    fn append(&self, table: TableId, key: &[u8], value: &[u8]) -> Result<(), StorageError>;

    /// Remove `key`; returns whether it existed.
    fn delete(&self, table: TableId, key: &[u8]) -> Result<bool, StorageError>;

    /// Snapshot of all rows of a table. Order is unspecified.
    fn scan(&self, table: TableId) -> Vec<(Bytes, Bytes)>;

    /// Number of keys in a table.
    fn table_len(&self, table: TableId) -> usize;

    /// Make all prior writes durable (no-op for memory backends).
    fn flush(&self) -> std::io::Result<()>;

    /// Open a batch scope: subsequent writes form one crash atom that only
    /// becomes durable at [`commit_batch`](KvStore::commit_batch). No-op for
    /// backends without durability.
    fn begin_batch(&self) -> Result<(), StorageError> {
        Ok(())
    }

    /// Commit the open batch scope, making its writes durable per the
    /// backend's durability policy.
    fn commit_batch(&self) -> Result<(), StorageError> {
        Ok(())
    }

    /// Abandon the open batch scope after a mid-batch failure. The batch's
    /// writes will not survive a restart; a durable backend whose in-memory
    /// state already applied part of the batch degrades to read-only.
    fn abort_batch(&self) {}

    /// `Some(reason)` once the store has entered its sticky read-only
    /// degraded state (writes refused, reads still served).
    fn degraded(&self) -> Option<String> {
        None
    }

    /// Cheap membership pre-check: `false` means `key` is definitely absent
    /// from `table`, `true` means it *may* be present. Backends with pruning
    /// metadata (run zone maps) answer without touching row data; the
    /// default answers `true` so callers always fall through to `get`.
    fn key_may_exist(&self, _table: TableId, _key: &[u8]) -> bool {
        true
    }

    /// Fused [`get`](KvStore::get) +
    /// [`key_may_exist`](KvStore::key_may_exist): read the value while the
    /// backend consults its pruning metadata in the same pass, so the query
    /// read path doesn't walk the backend's structures once for membership
    /// and again for the row. Backends without pruning metadata fall back
    /// to a plain `get`.
    fn get_checked(&self, table: TableId, key: &[u8]) -> Option<Bytes> {
        self.get(table, key)
    }

    /// Give the backend a chance to run deferred maintenance (e.g. a
    /// size-triggered compaction into immutable runs). Called from the
    /// indexer after each committed batch; no-op for memory backends.
    fn maintain(&self) -> Result<(), StorageError> {
        Ok(())
    }

    /// How complete this store's answers currently are. Backends without a
    /// quarantine mechanism are always [`Coverage::Full`]; a backend that
    /// quarantined corrupt state reports [`Coverage::Narrowed`] until a
    /// repair restores it.
    fn coverage(&self) -> Coverage {
        Coverage::Full
    }
}

/// Blanket impl so `Arc<S>` (and other smart pointers) can be used where a
/// store is expected.
impl<S: KvStore + ?Sized> KvStore for std::sync::Arc<S> {
    fn get(&self, table: TableId, key: &[u8]) -> Option<Bytes> {
        (**self).get(table, key)
    }
    fn put(&self, table: TableId, key: &[u8], value: &[u8]) -> Result<(), StorageError> {
        (**self).put(table, key, value)
    }
    fn append(&self, table: TableId, key: &[u8], value: &[u8]) -> Result<(), StorageError> {
        (**self).append(table, key, value)
    }
    fn delete(&self, table: TableId, key: &[u8]) -> Result<bool, StorageError> {
        (**self).delete(table, key)
    }
    fn scan(&self, table: TableId) -> Vec<(Bytes, Bytes)> {
        (**self).scan(table)
    }
    fn table_len(&self, table: TableId) -> usize {
        (**self).table_len(table)
    }
    fn flush(&self) -> std::io::Result<()> {
        (**self).flush()
    }
    fn begin_batch(&self) -> Result<(), StorageError> {
        (**self).begin_batch()
    }
    fn commit_batch(&self) -> Result<(), StorageError> {
        (**self).commit_batch()
    }
    fn abort_batch(&self) {
        (**self).abort_batch()
    }
    fn degraded(&self) -> Option<String> {
        (**self).degraded()
    }
    fn key_may_exist(&self, table: TableId, key: &[u8]) -> bool {
        (**self).key_may_exist(table, key)
    }
    fn get_checked(&self, table: TableId, key: &[u8]) -> Option<Bytes> {
        (**self).get_checked(table, key)
    }
    fn maintain(&self) -> Result<(), StorageError> {
        (**self).maintain()
    }
    fn coverage(&self) -> Coverage {
        (**self).coverage()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;
    use std::sync::Arc;

    #[test]
    fn arc_forwarding() {
        let store = Arc::new(MemStore::new());
        let t = TableId(0);
        KvStore::put(&store, t, b"k", b"v").unwrap();
        assert_eq!(KvStore::get(&store, t, b"k").unwrap().as_ref(), b"v");
        KvStore::append(&store, t, b"k", b"2").unwrap();
        assert_eq!(KvStore::get(&store, t, b"k").unwrap().as_ref(), b"v2");
        assert_eq!(KvStore::table_len(&store, t), 1);
        assert!(KvStore::delete(&store, t, b"k").unwrap());
        assert!(KvStore::scan(&store, t).is_empty());
        KvStore::flush(&store).unwrap();
        KvStore::begin_batch(&store).unwrap();
        KvStore::commit_batch(&store).unwrap();
        KvStore::abort_batch(&store);
        assert!(KvStore::degraded(&store).is_none());
        assert!(KvStore::key_may_exist(&store, t, b"anything"));
        KvStore::maintain(&store).unwrap();
        assert!(KvStore::coverage(&store).is_full());
    }

    #[test]
    fn coverage_states() {
        assert!(Coverage::Full.is_full());
        let narrowed = Coverage::Narrowed {
            quarantined_tables: vec![TableId(1), TableId(3)],
            reason: "checksum mismatch".into(),
        };
        assert!(!narrowed.is_full());
        assert_eq!(narrowed.clone(), narrowed);
    }
}
