//! The [`KvStore`] abstraction the index tables are built on.
//!
//! Mirrors the slice of the Cassandra API the paper's system actually uses:
//! key-addressed rows per table, whole-row reads, and append-style writes to
//! grow a row's value list.

use bytes::Bytes;

/// Identifies one logical table within a store.
///
/// The paper's schema needs five tables (`Seq`, `Index`, `Count`,
/// `ReverseCount`, `LastChecked`); ids are small integers so that backends
/// can use them as array indices. Up to 256 tables are supported, which also
/// leaves room for the per-period `Index` partitions of §3.1.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u8);

impl TableId {
    /// Raw id as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A key-value table store.
///
/// All operations are atomic per key. `append` is the workhorse: it extends
/// the value of `key` by `value` bytes in (amortized) time proportional to
/// `value.len()` — *not* to the current row size — which is what makes
/// posting-list maintenance cheap.
pub trait KvStore: Send + Sync {
    /// Read the full value of `key`, if present. The returned [`Bytes`] is a
    /// cheap reference-counted view; callers may hold it across writes (the
    /// store copies-on-append when a row is shared).
    fn get(&self, table: TableId, key: &[u8]) -> Option<Bytes>;

    /// Replace the value of `key`.
    fn put(&self, table: TableId, key: &[u8], value: &[u8]);

    /// Append `value` to the row of `key`, creating it if absent.
    fn append(&self, table: TableId, key: &[u8], value: &[u8]);

    /// Remove `key`; returns whether it existed.
    fn delete(&self, table: TableId, key: &[u8]) -> bool;

    /// Snapshot of all rows of a table. Order is unspecified.
    fn scan(&self, table: TableId) -> Vec<(Bytes, Bytes)>;

    /// Number of keys in a table.
    fn table_len(&self, table: TableId) -> usize;

    /// Make all prior writes durable (no-op for memory backends).
    fn flush(&self) -> std::io::Result<()>;
}

/// Blanket impl so `Arc<S>` (and other smart pointers) can be used where a
/// store is expected.
impl<S: KvStore + ?Sized> KvStore for std::sync::Arc<S> {
    fn get(&self, table: TableId, key: &[u8]) -> Option<Bytes> {
        (**self).get(table, key)
    }
    fn put(&self, table: TableId, key: &[u8], value: &[u8]) {
        (**self).put(table, key, value)
    }
    fn append(&self, table: TableId, key: &[u8], value: &[u8]) {
        (**self).append(table, key, value)
    }
    fn delete(&self, table: TableId, key: &[u8]) -> bool {
        (**self).delete(table, key)
    }
    fn scan(&self, table: TableId) -> Vec<(Bytes, Bytes)> {
        (**self).scan(table)
    }
    fn table_len(&self, table: TableId) -> usize {
        (**self).table_len(table)
    }
    fn flush(&self) -> std::io::Result<()> {
        (**self).flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;
    use std::sync::Arc;

    #[test]
    fn arc_forwarding() {
        let store = Arc::new(MemStore::new());
        let t = TableId(0);
        KvStore::put(&store, t, b"k", b"v");
        assert_eq!(KvStore::get(&store, t, b"k").unwrap().as_ref(), b"v");
        KvStore::append(&store, t, b"k", b"2");
        assert_eq!(KvStore::get(&store, t, b"k").unwrap().as_ref(), b"v2");
        assert_eq!(KvStore::table_len(&store, t), 1);
        assert!(KvStore::delete(&store, t, b"k"));
        assert!(KvStore::scan(&store, t).is_empty());
        KvStore::flush(&store).unwrap();
    }
}
