//! Fx hash: the fast multiply-xor hash used throughout rustc.
//!
//! The pair index hashes billions of small integer keys (packed activity
//! pairs, trace ids); SipHash would dominate the profile. We cannot add the
//! `rustc-hash` crate, so the algorithm — a per-word
//! `hash = (hash.rotate_left(5) ^ word) * SEED` fold — is implemented here.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx seed (`π`-derived, as in rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // xtask-lint: allow(no-panic): chunks_exact(8) yields 8-byte slices.
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with Fx hashing.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with Fx hashing.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hash a single `u64` without constructing a map (used for sharding).
#[inline]
pub fn hash_u64(x: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(x);
    h.finish()
}

/// Hash a byte slice (used to shard arbitrary keys).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_u64(42), hash_u64(42));
        assert_eq!(hash_bytes(b"hello"), hash_bytes(b"hello"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a collision-resistance proof — just a sanity check that small
        // deltas don't collapse.
        let hashes: Vec<u64> = (0u64..1000).map(hash_u64).collect();
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hashes.len());
    }

    #[test]
    fn byte_and_word_paths_cover_remainders() {
        // All lengths 0..=17 hash without panicking and unequal inputs
        // differ. Bytes start at 1: the tail is zero-padded, so a trailing
        // 0x00 byte is indistinguishable from absence (as with rustc's
        // fxhash, callers needing prefix-freeness must hash a length too —
        // `HashMap` keys of `Box<[u8]>` do via `write_usize`).
        let mut seen = std::collections::HashSet::new();
        for len in 0..=17 {
            let data: Vec<u8> = (1..=len as u8).collect();
            assert!(seen.insert(hash_bytes(&data)));
        }
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("x");
        assert!(s.contains("x"));
    }

    #[test]
    fn distribution_spreads_across_shards() {
        // Sequential u64 keys should spread over 64 shards reasonably evenly.
        let mut counts = [0usize; 64];
        for k in 0u64..6400 {
            counts[(hash_u64(k) % 64) as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(min > 0, "some shard never hit");
        assert!(max < 400, "shard skew too high: {max}");
    }
}
