//! Fault-injection suite: every way the filesystem can betray the store —
//! write errors, short writes, hard crashes, failing unlinks — must leave a
//! reopenable directory whose replayed state is a committed-batch prefix,
//! and must flip the live store into its sticky read-only degraded state
//! rather than risk appending after torn bytes.

use seqdet_storage::{
    DiskOptions, DiskStore, FaultFs, KvStore, StorageError, StoreMetrics, TableId,
};
use std::path::PathBuf;
use std::sync::Arc;

const T0: TableId = TableId(0);

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqdet-fault-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_faulty(dir: &PathBuf, fs: &FaultFs) -> DiskStore {
    DiskStore::open_with(dir, DiskOptions { vfs: Arc::new(fs.clone()), ..DiskOptions::default() })
        .expect("open with healthy FaultFs")
}

/// One committed batch writing `k -> v`.
fn commit_one(store: &DiskStore, key: &[u8], value: &[u8]) {
    store.begin_batch().expect("begin");
    store.put(T0, key, value).expect("put");
    store.commit_batch().expect("commit");
}

#[test]
fn write_error_mid_batch_degrades_and_reopen_drops_the_open_batch() {
    let dir = tmp_dir("mid-batch");
    let fs = FaultFs::new();
    let store = open_faulty(&dir, &fs);
    commit_one(&store, b"committed", b"v1");

    // Batch 2: the BEGIN record goes through, the payload write fails.
    fs.arm_fail_after_writes(1);
    store.begin_batch().expect("begin survives");
    let err = store.put(T0, b"doomed", b"v2").expect_err("injected write error");
    assert!(matches!(err, StorageError::Io(_)), "first failure is the I/O error: {err}");

    // Sticky degraded: every further write path call refuses, reads serve.
    assert!(store.degraded().is_some());
    assert!(store.put(T0, b"x", b"y").expect_err("degraded").is_degraded());
    assert!(store.append(T0, b"x", b"y").expect_err("degraded").is_degraded());
    assert!(store.delete(T0, b"x").expect_err("degraded").is_degraded());
    assert!(store.begin_batch().expect_err("degraded").is_degraded());
    assert_eq!(store.get(T0, b"committed").as_deref(), Some(&b"v1"[..]));
    // Healing the filesystem does not un-degrade the store: the segment
    // tail is still in an unknown state.
    fs.heal();
    assert!(store.put(T0, b"x", b"y").expect_err("still degraded").is_degraded());
    drop(store);

    // Reopen with a healthy filesystem: the committed batch survives, the
    // open batch (its lone BEGIN record) is discarded.
    let reopened = DiskStore::open(&dir).expect("reopen");
    assert_eq!(reopened.get(T0, b"committed").as_deref(), Some(&b"v1"[..]));
    assert!(reopened.get(T0, b"doomed").is_none());
    assert!(reopened.degraded().is_none(), "degradation does not persist across restarts");
    let report = seqdet_storage::verify_segments(&dir).expect("verify");
    assert!(report.ok(), "{report:?}");
    assert_eq!(report.batches_committed, 1);
    assert_eq!(report.batches_discarded, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn short_write_leaves_a_torn_tail_that_reopen_discards() {
    let dir = tmp_dir("short-write");
    let fs = FaultFs::new();
    let store = open_faulty(&dir, &fs);
    commit_one(&store, b"keep", b"v");

    // The next record reaches the file 7 bytes short of nothing — a torn
    // prefix, exactly what a power cut mid-write leaves.
    fs.arm_fail_after_writes(0);
    fs.set_short_write(7);
    store.put(T0, b"torn", b"payload").expect_err("short write fails");
    assert!(store.degraded().is_some());
    drop(store);

    let report = seqdet_storage::verify_segments(&dir).expect("verify");
    assert!(report.ok(), "a torn tail is not corruption: {report:?}");
    assert_eq!(report.torn_tails, 1);
    let reopened = DiskStore::open(&dir).expect("reopen");
    assert_eq!(reopened.get(T0, b"keep").as_deref(), Some(&b"v"[..]));
    assert!(reopened.get(T0, b"torn").is_none());
    // The reopened store appends past the discarded tail without issue.
    commit_one(&reopened, b"after", b"w");
    drop(reopened);
    let again = DiskStore::open(&dir).expect("reopen again");
    assert_eq!(again.get(T0, b"after").as_deref(), Some(&b"w"[..]));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_batch_recovers_to_the_committed_boundary() {
    let dir = tmp_dir("crash");
    let fs = FaultFs::new();
    let store = open_faulty(&dir, &fs);
    commit_one(&store, b"alpha", b"1");
    commit_one(&store, b"beta", b"2");

    // Crash 5 bytes into whatever the next write is.
    fs.arm_crash_after_bytes(5);
    store.begin_batch().expect_err("crash fires on the BEGIN record");
    assert!(fs.crashed());
    assert!(store.degraded().is_some());
    drop(store);

    let reopened = DiskStore::open(&dir).expect("reopen");
    assert_eq!(reopened.get(T0, b"alpha").as_deref(), Some(&b"1"[..]));
    assert_eq!(reopened.get(T0, b"beta").as_deref(), Some(&b"2"[..]));
    assert_eq!(reopened.scan(T0).len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aborting_a_batch_degrades_because_memory_is_ahead_of_disk() {
    let dir = tmp_dir("abort");
    let fs = FaultFs::new();
    let metrics = Arc::new(StoreMetrics::new());
    let store = DiskStore::open_with(
        &dir,
        DiskOptions {
            vfs: Arc::new(fs.clone()),
            metrics: Some(Arc::clone(&metrics)),
            ..DiskOptions::default()
        },
    )
    .expect("open");
    store.begin_batch().expect("begin");
    store.put(T0, b"half", b"applied").expect("put");
    store.abort_batch();
    assert!(store.degraded().is_some(), "an aborted batch cannot be un-applied in memory");
    assert!(metrics.degraded());
    assert_eq!(metrics.batch_aborts(), 1);
    drop(store);
    // Replay never sees a COMMIT for the aborted batch.
    let reopened = DiskStore::open(&dir).expect("reopen");
    assert!(reopened.get(T0, b"half").is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_sweep_during_compaction_is_reported_but_harmless() {
    let dir = tmp_dir("sweep");
    let fs = FaultFs::new();
    let store = open_faulty(&dir, &fs);
    for i in 0..4u32 {
        commit_one(&store, &i.to_le_bytes(), &[i as u8; 8]);
    }

    // Every unlink fails: the snapshot still publishes; the sweep reports.
    fs.arm_fail_after_removes(0);
    let err = store.compact().expect_err("sweep failures are surfaced");
    assert!(err.to_string().contains("could not be removed"), "{err}");
    assert!(store.degraded().is_none(), "leftover old segments are not a safety problem");
    // The store keeps working.
    commit_one(&store, b"post-compact", b"ok");
    drop(store);

    // Replay with the stale segments still present is correct: the
    // snapshot's marker record supersedes them.
    let reopened = DiskStore::open(&dir).expect("reopen with leftovers");
    for i in 0..4u32 {
        assert_eq!(reopened.get(T0, &i.to_le_bytes()).as_deref(), Some(&[i as u8; 8][..]));
    }
    assert_eq!(reopened.get(T0, b"post-compact").as_deref(), Some(&b"ok"[..]));
    // A later compaction on a healthy filesystem clears the debris.
    reopened.compact().expect("healthy compact");
    assert!(reopened.num_segments().expect("count") <= 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn commit_failure_degrades_and_reopen_discards_the_batch() {
    let dir = tmp_dir("commit-fail");
    let fs = FaultFs::new();
    let store = open_faulty(&dir, &fs);
    commit_one(&store, b"durable", b"v");

    // BEGIN + payload succeed; the COMMIT record itself fails to write.
    fs.arm_fail_after_writes(2);
    store.begin_batch().expect("begin");
    store.put(T0, b"phantom", b"v").expect("payload");
    store.commit_batch().expect_err("commit write fails");
    assert!(store.degraded().is_some());
    drop(store);

    let reopened = DiskStore::open(&dir).expect("reopen");
    assert_eq!(reopened.get(T0, b"durable").as_deref(), Some(&b"v"[..]));
    assert!(reopened.get(T0, b"phantom").is_none(), "uncommitted batch must not replay");
    let _ = std::fs::remove_dir_all(&dir);
}
