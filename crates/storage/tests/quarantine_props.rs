//! Property suite for the quarantine read path: for arbitrary table
//! contents and an arbitrary subset of damaged runs, reads over the
//! narrowed store must never panic, never serve bytes from a quarantined
//! run, and keep serving the surviving tables exactly. With the segment
//! history retained, `repair()` must then restore every row and report
//! full coverage again.
//!
//! The model is a plain `BTreeMap` per table — after compaction each
//! table's rows live in exactly one immutable run, so quarantining that
//! run must make the table read as empty (the delta was drained by the
//! compaction), while untouched tables keep agreeing with the model.

use proptest::prelude::*;
use seqdet_storage::run::parse_run_file_name;
use seqdet_storage::{Coverage, DiskOptions, DiskStore, KvStore, TableId};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmp_dir() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("seqdet-qprop-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Arbitrary byte strings with length in `lo..hi`.
fn arb_bytes(lo: usize, hi: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255, lo..hi)
}

/// Per-table contents: a handful of tables, each with at least one row so
/// compaction produces a run to damage. Keys collide across tables on
/// purpose — quarantine is per-run, not per-key.
fn arb_tables() -> impl Strategy<Value = BTreeMap<u8, BTreeMap<Vec<u8>, Vec<u8>>>> {
    prop::collection::vec(
        (0u8..6, prop::collection::vec((arb_bytes(1, 12), arb_bytes(0, 24)), 1..12)),
        1..4,
    )
    .prop_map(|tables| {
        let mut out: BTreeMap<u8, BTreeMap<Vec<u8>, Vec<u8>>> = BTreeMap::new();
        for (t, rows) in tables {
            out.entry(t).or_default().extend(rows);
        }
        out
    })
}

/// Flip one byte in the middle of the file — the run CRC covers every
/// byte before the trailer, so any flip must be diagnosed.
fn flip_mid_byte(path: &Path) {
    let mut data = std::fs::read(path).expect("read run file");
    let mid = data.len() / 2;
    if let Some(b) = data.get_mut(mid) {
        *b ^= 0xFF;
    }
    std::fs::write(path, &data).expect("write damaged run file");
}

/// The run file a table compacted into, if any.
fn run_path_for(dir: &Path, table: TableId) -> Option<PathBuf> {
    for entry in std::fs::read_dir(dir).expect("read store dir") {
        let path = entry.expect("dir entry").path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if let Some((_, t)) = parse_run_file_name(name) {
            if t == table {
                return Some(path);
            }
        }
    }
    None
}

proptest! {
    // Each case builds, compacts, damages, scrubs and repairs a real
    // on-disk store; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn narrowed_reads_never_serve_quarantined_data_and_repair_restores_full(
        tables in arb_tables(),
        quarantine_mask in 0u8..=255,
        probes in prop::collection::vec(arb_bytes(0, 12), 0..8),
    ) {
        let dir = tmp_dir();
        let store = DiskStore::open_with(
            &dir,
            DiskOptions { retain_segments: true, ..DiskOptions::default() },
        )
        .expect("open");

        for (&t, rows) in &tables {
            for (k, v) in rows {
                store.put(TableId(t), k, v).expect("put");
            }
        }
        store.compact().expect("compact");

        // Damage an arbitrary (possibly empty) subset of the tables' runs.
        let damaged: BTreeSet<u8> = tables
            .keys()
            .enumerate()
            .filter(|(i, _)| quarantine_mask & (1 << (i % 8)) != 0)
            .map(|(_, &t)| t)
            .collect();
        for &t in &damaged {
            let path = run_path_for(&dir, TableId(t)).expect("every table compacted to a run");
            flip_mid_byte(&path);
        }

        let outcome = store.scrub();
        prop_assert_eq!(outcome.runs_checked, tables.len());
        prop_assert_eq!(outcome.newly_quarantined, damaged.len());

        // Coverage names exactly the damaged tables.
        match store.coverage() {
            Coverage::Full => prop_assert!(damaged.is_empty()),
            Coverage::Narrowed { quarantined_tables, .. } => {
                let expected: Vec<TableId> = damaged.iter().map(|&t| TableId(t)).collect();
                prop_assert_eq!(quarantined_tables, expected);
            }
        }

        // Reads never panic and never resurrect quarantined bytes: a
        // damaged table's rows all vanished with its run (the delta was
        // drained into it), survivors still agree with the model.
        for (&t, rows) in &tables {
            let table = TableId(t);
            for (k, v) in rows {
                let got = store.get(table, k);
                if damaged.contains(&t) {
                    prop_assert!(got.is_none(), "table {t} is quarantined");
                } else {
                    prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
                }
                // The pruning pre-check must stay panic-free too.
                let _ = store.key_may_exist(table, k);
                prop_assert_eq!(store.get_checked(table, k), store.get(table, k));
            }
            for probe in &probes {
                if !rows.contains_key(probe) {
                    prop_assert!(store.get(table, probe).is_none());
                }
            }
        }

        // Segments were retained, so repair replays the full history and
        // every table — including the quarantined ones — comes back whole.
        let repaired = store.repair().expect("repair");
        prop_assert_eq!(repaired.repaired, damaged.len());
        if !damaged.is_empty() {
            prop_assert!(repaired.full_history, "retained segments make repair lossless");
        }
        prop_assert!(store.coverage().is_full());
        for (&t, rows) in &tables {
            for (k, v) in rows {
                prop_assert_eq!(store.get(TableId(t), k).as_deref(), Some(v.as_slice()));
            }
        }

        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
