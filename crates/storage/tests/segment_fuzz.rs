//! Fuzz the segment record parser: [`parse_segment_bytes`] is the first
//! code to touch bytes read back from disk, so it must classify *any* input
//! — garbage, torn, bit-flipped — without panicking, and must never feed an
//! unverified record to the apply callback.

use proptest::prelude::*;
use seqdet_storage::crc::crc32;
use seqdet_storage::{parse_segment_bytes, replay_segment_bytes, SegmentEnd, TableId};

/// Build one wire-format record: `[crc][op][table][klen][vlen][key][value]`.
fn record(op: u8, table: u8, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(10 + key.len() + value.len());
    body.push(op);
    body.push(table);
    body.extend_from_slice(&(key.len() as u32).to_le_bytes());
    body.extend_from_slice(&(value.len() as u32).to_le_bytes());
    body.extend_from_slice(key);
    body.extend_from_slice(value);
    let mut rec = Vec::with_capacity(4 + body.len());
    rec.extend_from_slice(&crc32(&body).to_le_bytes());
    rec.extend_from_slice(&body);
    rec
}

/// A batch-framed segment: `batches` batches, batch `i` holding `i % 3 + 1`
/// put records, each batch wrapped in BEGIN/COMMIT control records.
/// Returns the bytes plus, per batch, `(end_offset, cumulative_records)` —
/// the byte where its COMMIT record ends and how many payload records are
/// visible once it commits.
fn batched_segment(batches: usize) -> (Vec<u8>, Vec<(usize, usize)>) {
    const OP_BATCH_BEGIN: u8 = 4;
    const OP_BATCH_COMMIT: u8 = 5;
    let mut seg = Vec::new();
    let mut boundaries = Vec::new();
    let mut total = 0usize;
    for i in 0..batches {
        let id = (i as u64 + 1).to_le_bytes();
        seg.extend_from_slice(&record(OP_BATCH_BEGIN, 0, b"", &id));
        for r in 0..(i % 3 + 1) {
            let key = (total as u32).to_le_bytes();
            seg.extend_from_slice(&record(1, (r % 5) as u8, &key, &[r as u8; 5]));
            total += 1;
        }
        seg.extend_from_slice(&record(OP_BATCH_COMMIT, 0, b"", &id));
        boundaries.push((seg.len(), total));
    }
    (seg, boundaries)
}

/// A segment of `n` small valid records (ops cycle through put/append/delete).
fn valid_segment(n: usize) -> Vec<u8> {
    const OPS: [u8; 3] = [1, 2, 3]; // OP_PUT, OP_APPEND, OP_DELETE
    let mut seg = Vec::new();
    for i in 0..n {
        let key = (i as u32).to_le_bytes();
        let value = vec![i as u8; i % 7];
        seg.extend_from_slice(&record(OPS[i % 3], (i % 5) as u8, &key, &value));
    }
    seg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: never panic, and the callback runs exactly once per
    /// *verified* record — whatever the classification.
    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(0u8..=255, 0..512)) {
        let mut applied = 0u64;
        let records = match parse_segment_bytes(&data, |_, _, _, _| applied += 1) {
            SegmentEnd::Clean { records } => records,
            SegmentEnd::TornTail { records, .. } => records,
            SegmentEnd::Corrupt { records, .. } => records,
        };
        // `Corrupt { unknown op }` verifies the checksum but rejects the
        // record before apply, so applied may trail by at most one.
        prop_assert!(records == applied || records == applied + 1);
    }

    /// A valid segment parses clean, with every record applied.
    #[test]
    fn valid_segments_parse_clean(n in 0usize..20) {
        let seg = valid_segment(n);
        let mut applied = Vec::new();
        let end = parse_segment_bytes(&seg, |op, table, key, _| {
            applied.push((op, table, key.to_vec()));
        });
        prop_assert_eq!(end, SegmentEnd::Clean { records: n as u64 });
        prop_assert_eq!(applied.len(), n);
        for (i, (_, table, key)) in applied.iter().enumerate() {
            prop_assert_eq!(*table, TableId((i % 5) as u8));
            prop_assert_eq!(&key[..], &(i as u32).to_le_bytes());
        }
    }

    /// Truncating a valid segment anywhere never panics: a cut on a record
    /// boundary is clean, anywhere else is a torn tail — never corruption,
    /// and never applies the torn record.
    #[test]
    fn truncation_is_a_torn_tail_not_corruption(n in 1usize..12, cut_ppm in 0u32..1_000_000) {
        let seg = valid_segment(n);
        let cut = (seg.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        match parse_segment_bytes(&seg[..cut], |_, _, _, _| {}) {
            SegmentEnd::Clean { .. } | SegmentEnd::TornTail { .. } => {}
            SegmentEnd::Corrupt { offset, reason, .. } => {
                return Err(TestCaseError(format!(
                    "truncation at {cut} misread as corruption @ {offset}: {reason}"
                )));
            }
        }
    }

    /// Arbitrary bytes through the batch-aware replayer: never panic, and
    /// the bookkeeping stays coherent (discards only happen when a batch
    /// was actually opened).
    #[test]
    fn batch_replay_of_arbitrary_bytes_never_panics(
        data in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let mut applied = 0u64;
        let scan = replay_segment_bytes(&data, |_, _, _, _| applied += 1);
        prop_assert!(scan.batches_discarded <= scan.batches_committed + 1);
        if scan.batches_committed > 0 {
            prop_assert!(scan.max_batch_id.is_some());
        }
    }

    /// Cutting a batch-framed log anywhere applies exactly the records of
    /// the whole committed batches before the cut — an open batch's records
    /// are buffered, never applied, and counted as discarded.
    #[test]
    fn cuts_apply_only_whole_committed_batches(
        batches in 1usize..8,
        cut_ppm in 0u32..=1_000_000,
    ) {
        let (seg, boundaries) = batched_segment(batches);
        let cut = (seg.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        let committed_before_cut =
            boundaries.iter().take_while(|&&(end, _)| end <= cut).count();
        let expected_records =
            if committed_before_cut == 0 { 0 } else { boundaries[committed_before_cut - 1].1 };

        let mut applied = Vec::new();
        let scan = replay_segment_bytes(&seg[..cut], |_, _, key, _| {
            applied.push(key.to_vec());
        });
        prop_assert_eq!(scan.batches_committed, committed_before_cut as u64);
        prop_assert!(scan.batches_discarded <= 1, "at most the cut-open batch discards");
        prop_assert_eq!(applied.len(), expected_records);
        // Applied records are exactly the prefix, in order.
        for (i, key) in applied.iter().enumerate() {
            prop_assert_eq!(&key[..], &(i as u32).to_le_bytes());
        }
        // A cut is never misread as corruption.
        match scan.end {
            SegmentEnd::Clean { .. } | SegmentEnd::TornTail { .. } => {}
            SegmentEnd::Corrupt { offset, reason, .. } => {
                return Err(TestCaseError(format!(
                    "cut at {cut} misread as corruption @ {offset}: {reason}"
                )));
            }
        }
    }

    /// Flipping any single bit of any record makes the parse stop at or
    /// before that record with `Corrupt` (checksum or framing damage may
    /// also surface as a torn tail when the flipped bit is in a length
    /// field) — and the damaged record's payload is never applied.
    #[test]
    fn bit_flips_never_reach_the_apply_callback(
        n in 1usize..10,
        byte_ppm in 0u32..1_000_000,
        bit in 0u8..8,
    ) {
        let mut seg = valid_segment(n);
        let idx = (seg.len() as u64 * byte_ppm as u64 / 1_000_000) as usize % seg.len();
        seg[idx] ^= 1 << bit;

        // Which record was damaged?
        let mut bounds = Vec::new();
        let mut at = 0usize;
        for i in 0..n {
            let len = record(
                [1u8, 2, 3][i % 3],
                (i % 5) as u8,
                &(i as u32).to_le_bytes(),
                &vec![i as u8; i % 7],
            )
            .len();
            bounds.push((at, at + len));
            at += len;
        }
        let damaged = bounds.iter().position(|&(s, e)| idx >= s && idx < e).unwrap_or(n);

        let mut applied = 0usize;
        let end = parse_segment_bytes(&seg, |_, _, _, _| applied += 1);
        // Every record before the damaged one is intact and must apply; the
        // damaged one must not (its checksum no longer matches its body).
        prop_assert!(applied <= damaged, "applied {applied} records, damage in #{damaged}");
        match end {
            SegmentEnd::Clean { .. } => {
                return Err(TestCaseError(
                    "bit-flipped segment parsed clean".to_string(),
                ));
            }
            SegmentEnd::TornTail { .. } | SegmentEnd::Corrupt { .. } => {}
        }
    }
}
