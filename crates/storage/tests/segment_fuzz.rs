//! Fuzz the segment record parser: [`parse_segment_bytes`] is the first
//! code to touch bytes read back from disk, so it must classify *any* input
//! — garbage, torn, bit-flipped — without panicking, and must never feed an
//! unverified record to the apply callback.

use proptest::prelude::*;
use seqdet_storage::crc::crc32;
use seqdet_storage::{parse_segment_bytes, SegmentEnd, TableId};

/// Build one wire-format record: `[crc][op][table][klen][vlen][key][value]`.
fn record(op: u8, table: u8, key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(10 + key.len() + value.len());
    body.push(op);
    body.push(table);
    body.extend_from_slice(&(key.len() as u32).to_le_bytes());
    body.extend_from_slice(&(value.len() as u32).to_le_bytes());
    body.extend_from_slice(key);
    body.extend_from_slice(value);
    let mut rec = Vec::with_capacity(4 + body.len());
    rec.extend_from_slice(&crc32(&body).to_le_bytes());
    rec.extend_from_slice(&body);
    rec
}

/// A segment of `n` small valid records (ops cycle through put/append/delete).
fn valid_segment(n: usize) -> Vec<u8> {
    const OPS: [u8; 3] = [1, 2, 3]; // OP_PUT, OP_APPEND, OP_DELETE
    let mut seg = Vec::new();
    for i in 0..n {
        let key = (i as u32).to_le_bytes();
        let value = vec![i as u8; i % 7];
        seg.extend_from_slice(&record(OPS[i % 3], (i % 5) as u8, &key, &value));
    }
    seg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: never panic, and the callback runs exactly once per
    /// *verified* record — whatever the classification.
    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(0u8..=255, 0..512)) {
        let mut applied = 0u64;
        let records = match parse_segment_bytes(&data, |_, _, _, _| applied += 1) {
            SegmentEnd::Clean { records } => records,
            SegmentEnd::TornTail { records, .. } => records,
            SegmentEnd::Corrupt { records, .. } => records,
        };
        // `Corrupt { unknown op }` verifies the checksum but rejects the
        // record before apply, so applied may trail by at most one.
        prop_assert!(records == applied || records == applied + 1);
    }

    /// A valid segment parses clean, with every record applied.
    #[test]
    fn valid_segments_parse_clean(n in 0usize..20) {
        let seg = valid_segment(n);
        let mut applied = Vec::new();
        let end = parse_segment_bytes(&seg, |op, table, key, _| {
            applied.push((op, table, key.to_vec()));
        });
        prop_assert_eq!(end, SegmentEnd::Clean { records: n as u64 });
        prop_assert_eq!(applied.len(), n);
        for (i, (_, table, key)) in applied.iter().enumerate() {
            prop_assert_eq!(*table, TableId((i % 5) as u8));
            prop_assert_eq!(&key[..], &(i as u32).to_le_bytes());
        }
    }

    /// Truncating a valid segment anywhere never panics: a cut on a record
    /// boundary is clean, anywhere else is a torn tail — never corruption,
    /// and never applies the torn record.
    #[test]
    fn truncation_is_a_torn_tail_not_corruption(n in 1usize..12, cut_ppm in 0u32..1_000_000) {
        let seg = valid_segment(n);
        let cut = (seg.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        match parse_segment_bytes(&seg[..cut], |_, _, _, _| {}) {
            SegmentEnd::Clean { .. } | SegmentEnd::TornTail { .. } => {}
            SegmentEnd::Corrupt { offset, reason, .. } => {
                return Err(TestCaseError(format!(
                    "truncation at {cut} misread as corruption @ {offset}: {reason}"
                )));
            }
        }
    }

    /// Flipping any single bit of any record makes the parse stop at or
    /// before that record with `Corrupt` (checksum or framing damage may
    /// also surface as a torn tail when the flipped bit is in a length
    /// field) — and the damaged record's payload is never applied.
    #[test]
    fn bit_flips_never_reach_the_apply_callback(
        n in 1usize..10,
        byte_ppm in 0u32..1_000_000,
        bit in 0u8..8,
    ) {
        let mut seg = valid_segment(n);
        let idx = (seg.len() as u64 * byte_ppm as u64 / 1_000_000) as usize % seg.len();
        seg[idx] ^= 1 << bit;

        // Which record was damaged?
        let mut bounds = Vec::new();
        let mut at = 0usize;
        for i in 0..n {
            let len = record(
                [1u8, 2, 3][i % 3],
                (i % 5) as u8,
                &(i as u32).to_le_bytes(),
                &vec![i as u8; i % 7],
            )
            .len();
            bounds.push((at, at + len));
            at += len;
        }
        let damaged = bounds.iter().position(|&(s, e)| idx >= s && idx < e).unwrap_or(n);

        let mut applied = 0usize;
        let end = parse_segment_bytes(&seg, |_, _, _, _| applied += 1);
        // Every record before the damaged one is intact and must apply; the
        // damaged one must not (its checksum no longer matches its body).
        prop_assert!(applied <= damaged, "applied {applied} records, damage in #{damaged}");
        match end {
            SegmentEnd::Clean { .. } => {
                return Err(TestCaseError(
                    "bit-flipped segment parsed clean".to_string(),
                ));
            }
            SegmentEnd::TornTail { .. } | SegmentEnd::Corrupt { .. } => {}
        }
    }
}
