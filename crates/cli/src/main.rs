//! `seqdet` — command-line front end.
//!
//! ```text
//! seqdet gen      --profile bpi_2013 [--scale N] [--seed S] --out log.csv|log.xes
//! seqdet gen      --random TRACES,EVENTS,ACTS [--seed S] --out log.csv
//! seqdet index    --input log.csv|log.xes --store DIR [--policy sc|stnm]
//!                 [--method indexing|parsing|state] [--threads N]
//!                 [--partition-period P]
//! seqdet info     --store DIR
//! seqdet detect   --store DIR --pattern A,B,C [--any-match]
//! seqdet stats    --store DIR --pattern A,B,C [--all-pairs]
//! seqdet continue --store DIR --pattern A,B --method accurate|fast|hybrid
//!                 [--k N] [--max-gap G]
//! seqdet audit    --store DIR [--json]
//! ```
//!
//! The store directory is a persistent [`seqdet_storage::DiskStore`]; the
//! `index` subcommand can be re-run with new batches of the same log to
//! exercise the paper's incremental update path.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
