//! Hand-rolled argument parsing (no external CLI crate is available).

use seqdet_core::{Policy, PostingFormat, StnmMethod};
use seqdet_storage::DurabilityPolicy;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
usage:
  seqdet gen      --profile NAME [--scale N] [--seed S] --out FILE.{csv,xes}
  seqdet gen      --random TRACES,EVENTS,ACTS [--seed S] --out FILE.{csv,xes}
  seqdet index    --input FILE.{csv,xes} --store DIR [--policy sc|stnm]
                  [--method indexing|parsing|state] [--threads N]
                  [--partition-period P] [--durability always|batch|os]
                  [--posting-format v1|v2] [--retain-segments]
  seqdet info     --store DIR
  seqdet detect   --store DIR --pattern A,B,C [--any-match]
  seqdet stats    --store DIR --pattern A,B,C [--all-pairs]
  seqdet continue --store DIR --pattern A,B --method accurate|fast|hybrid
                  [--k N] [--max-gap G]
  seqdet query    --store DIR \"DETECT a -> b [WITHIN n] [ANY MATCH]\"
  seqdet audit    --store DIR [--json]
  seqdet compact  --store DIR [--retention TTL] [--retain-segments]
  seqdet scrub    --store DIR
  seqdet repair   --store DIR [--retain-segments]
  seqdet serve    --store DIR [--addr 127.0.0.1:7878] [--workers N]
                  [--queue N] [--timeout-ms T] [--max-requests-per-conn N]
                  [--durability always|batch|os] [--scrub-interval-ms T]
                  [--retain-segments]
profiles: max_100 max_500 med_5000 max_5000 max_1000 max_10000 min_10000
          bpi_2013 bpi_2020 bpi_2017";

/// Parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a dataset.
    Gen {
        /// Table-4 profile name (mutually exclusive with `random`).
        profile: Option<String>,
        /// `(traces, events_per_trace, activities)` random-log spec.
        random: Option<(usize, usize, usize)>,
        /// Trace-count divisor for profiles.
        scale: usize,
        /// RNG seed.
        seed: u64,
        /// Output path (`.csv` or `.xes`).
        out: String,
    },
    /// Index (or incrementally extend) a store from a log file.
    Index {
        /// Input log path.
        input: String,
        /// Store directory.
        store: String,
        /// SC or STNM.
        policy: Policy,
        /// STNM pair-creation flavor.
        method: StnmMethod,
        /// Worker threads (0 = all).
        threads: usize,
        /// Optional §3.1.3 partition period.
        partition_period: Option<u64>,
        /// Fsync policy of the store's write path.
        durability: DurabilityPolicy,
        /// Posting-row format for fresh stores (`None` = default v2, or the
        /// `SEQDET_POSTING_FORMAT` override). Existing stores keep their
        /// recorded format; passing a conflicting flag is an error.
        posting_format: Option<PostingFormat>,
        /// Keep compaction-superseded segments as a repair log, making
        /// `seqdet repair` lossless at the cost of disk space.
        retain_segments: bool,
    },
    /// Print store summary.
    Info {
        /// Store directory.
        store: String,
    },
    /// Pattern detection.
    Detect {
        /// Store directory.
        store: String,
        /// Comma-separated activity names.
        pattern: Vec<String>,
        /// Use skip-till-any-match instead of the index policy.
        any_match: bool,
    },
    /// Statistics query.
    Stats {
        /// Store directory.
        store: String,
        /// Comma-separated activity names.
        pattern: Vec<String>,
        /// Use the all-pairs (tighter) bound.
        all_pairs: bool,
    },
    /// Verify segment checksums and the five-table invariants of a store.
    Audit {
        /// Store directory.
        store: String,
        /// Emit the report as JSON instead of text.
        json: bool,
    },
    /// Compact a store's segments into sorted immutable runs, optionally
    /// dropping runs whose newest timestamp has aged past a TTL.
    Compact {
        /// Store directory.
        store: String,
        /// Optional retention TTL (same unit as event timestamps): runs
        /// entirely older than `newest run timestamp − TTL` are dropped.
        retention: Option<u64>,
        /// Keep the superseded segments on disk as a repair log instead of
        /// deleting them once their rows are in runs.
        retain_segments: bool,
    },
    /// Re-verify every live run file against its checksum, quarantining
    /// any that rotted at rest.
    Scrub {
        /// Store directory.
        store: String,
    },
    /// Rebuild the run tier after quarantine events (lossless when the
    /// full segment history was retained, bounded-loss otherwise).
    Repair {
        /// Store directory.
        store: String,
        /// Keep superseded segments from now on, so future repairs are
        /// lossless.
        retain_segments: bool,
    },
    /// Run a query-language statement.
    Query {
        /// Store directory.
        store: String,
        /// The statement text.
        statement: String,
    },
    /// Start the HTTP query service.
    Serve {
        /// Store directory.
        store: String,
        /// Listen address.
        addr: String,
        /// Worker-pool size (0 = all cores).
        workers: usize,
        /// Bounded connection-queue depth (overflow sheds with 503).
        queue: usize,
        /// Read/write deadline per connection, in milliseconds.
        timeout_ms: u64,
        /// Keep-alive request cap per connection.
        max_requests_per_conn: usize,
        /// Fsync policy of the store's write path.
        durability: DurabilityPolicy,
        /// Background scrub cadence in milliseconds (`0` disables the
        /// scrubber thread).
        scrub_interval_ms: u64,
        /// Keep compaction-superseded segments as a repair log.
        retain_segments: bool,
    },
    /// Pattern continuation.
    Continue {
        /// Store directory.
        store: String,
        /// Comma-separated activity names.
        pattern: Vec<String>,
        /// accurate | fast | hybrid.
        method: String,
        /// `topK` for hybrid.
        k: usize,
        /// Optional max gap for accurate/hybrid.
        max_gap: Option<u64>,
    },
}

/// Parse failure with a human-readable message.
pub type ParseError = String;

struct Cursor<'a> {
    args: &'a [String],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn value(&mut self, flag: &str) -> Result<String, ParseError> {
        self.i += 1;
        self.args.get(self.i).cloned().ok_or_else(|| format!("flag {flag} expects a value"))
    }
}

fn parse_usize(s: &str, what: &str) -> Result<usize, ParseError> {
    s.parse().map_err(|_| format!("invalid {what}: {s:?}"))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, ParseError> {
    s.parse().map_err(|_| format!("invalid {what}: {s:?}"))
}

fn split_pattern(s: &str) -> Vec<String> {
    s.split(',').map(|p| p.trim().to_string()).filter(|p| !p.is_empty()).collect()
}

/// Parse the full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let sub = args.first().ok_or_else(|| "missing subcommand".to_string())?;
    let mut cur = Cursor { args, i: 0 };
    match sub.as_str() {
        "gen" => {
            let (mut profile, mut random, mut scale, mut seed, mut out) =
                (None, None, 1usize, 42u64, None);
            while cur.i + 1 < args.len() {
                cur.i += 1;
                match args[cur.i].as_str() {
                    "--profile" => profile = Some(cur.value("--profile")?),
                    "--random" => {
                        let v = cur.value("--random")?;
                        let parts: Vec<&str> = v.split(',').collect();
                        if parts.len() != 3 {
                            return Err("--random expects TRACES,EVENTS,ACTS".into());
                        }
                        random = Some((
                            parse_usize(parts[0], "traces")?,
                            parse_usize(parts[1], "events per trace")?,
                            parse_usize(parts[2], "activities")?,
                        ));
                    }
                    "--scale" => scale = parse_usize(&cur.value("--scale")?, "scale")?,
                    "--seed" => seed = parse_u64(&cur.value("--seed")?, "seed")?,
                    "--out" => out = Some(cur.value("--out")?),
                    other => return Err(format!("unknown flag {other} for gen")),
                }
            }
            if profile.is_some() == random.is_some() {
                return Err("gen needs exactly one of --profile / --random".into());
            }
            let out = out.ok_or_else(|| "gen requires --out".to_string())?;
            Ok(Command::Gen { profile, random, scale: scale.max(1), seed, out })
        }
        "index" => {
            let (mut input, mut store) = (None, None);
            let mut policy = Policy::SkipTillNextMatch;
            let mut method = StnmMethod::Indexing;
            let mut threads = 0usize;
            let mut partition_period = None;
            let mut durability = DurabilityPolicy::default();
            let mut posting_format = None;
            let mut retain_segments = false;
            while cur.i + 1 < args.len() {
                cur.i += 1;
                match args[cur.i].as_str() {
                    "--input" => input = Some(cur.value("--input")?),
                    "--retain-segments" => retain_segments = true,
                    "--store" => store = Some(cur.value("--store")?),
                    "--policy" => {
                        policy = match cur.value("--policy")?.as_str() {
                            "sc" => Policy::StrictContiguity,
                            "stnm" => Policy::SkipTillNextMatch,
                            other => return Err(format!("unknown policy {other:?}")),
                        }
                    }
                    "--method" => {
                        method = match cur.value("--method")?.as_str() {
                            "indexing" => StnmMethod::Indexing,
                            "parsing" => StnmMethod::Parsing,
                            "state" => StnmMethod::State,
                            other => return Err(format!("unknown method {other:?}")),
                        }
                    }
                    "--threads" => threads = parse_usize(&cur.value("--threads")?, "threads")?,
                    "--partition-period" => {
                        partition_period =
                            Some(parse_u64(&cur.value("--partition-period")?, "period")?)
                    }
                    "--durability" => durability = parse_durability(&cur.value("--durability")?)?,
                    "--posting-format" => {
                        let v = cur.value("--posting-format")?;
                        posting_format =
                            Some(PostingFormat::from_name(&v).ok_or_else(|| {
                                format!("unknown posting format {v:?} (use v1|v2)")
                            })?);
                    }
                    other => return Err(format!("unknown flag {other} for index")),
                }
            }
            Ok(Command::Index {
                input: input.ok_or_else(|| "index requires --input".to_string())?,
                store: store.ok_or_else(|| "index requires --store".to_string())?,
                policy,
                method,
                threads,
                partition_period,
                durability,
                posting_format,
                retain_segments,
            })
        }
        "query" => {
            let (mut store, mut statement) = (None, None);
            while cur.i + 1 < args.len() {
                cur.i += 1;
                match args[cur.i].as_str() {
                    "--store" => store = Some(cur.value("--store")?),
                    other if statement.is_none() && !other.starts_with("--") => {
                        statement = Some(other.to_owned())
                    }
                    other => return Err(format!("unknown flag {other} for query")),
                }
            }
            Ok(Command::Query {
                store: store.ok_or_else(|| "query requires --store".to_string())?,
                statement: statement.ok_or_else(|| "query requires a statement".to_string())?,
            })
        }
        "compact" => {
            let (mut store, mut retention) = (None, None);
            let mut retain_segments = false;
            while cur.i + 1 < args.len() {
                cur.i += 1;
                match args[cur.i].as_str() {
                    "--store" => store = Some(cur.value("--store")?),
                    "--retention" => {
                        retention = Some(parse_u64(&cur.value("--retention")?, "retention TTL")?)
                    }
                    "--retain-segments" => retain_segments = true,
                    other => return Err(format!("unknown flag {other} for compact")),
                }
            }
            Ok(Command::Compact {
                store: store.ok_or_else(|| "compact requires --store".to_string())?,
                retention,
                retain_segments,
            })
        }
        "scrub" => {
            let mut store = None;
            while cur.i + 1 < args.len() {
                cur.i += 1;
                match args[cur.i].as_str() {
                    "--store" => store = Some(cur.value("--store")?),
                    other => return Err(format!("unknown flag {other} for scrub")),
                }
            }
            Ok(Command::Scrub { store: store.ok_or_else(|| "scrub requires --store".to_string())? })
        }
        "repair" => {
            let (mut store, mut retain_segments) = (None, false);
            while cur.i + 1 < args.len() {
                cur.i += 1;
                match args[cur.i].as_str() {
                    "--store" => store = Some(cur.value("--store")?),
                    "--retain-segments" => retain_segments = true,
                    other => return Err(format!("unknown flag {other} for repair")),
                }
            }
            Ok(Command::Repair {
                store: store.ok_or_else(|| "repair requires --store".to_string())?,
                retain_segments,
            })
        }
        "audit" => {
            let (mut store, mut json) = (None, false);
            while cur.i + 1 < args.len() {
                cur.i += 1;
                match args[cur.i].as_str() {
                    "--store" => store = Some(cur.value("--store")?),
                    "--json" => json = true,
                    other => return Err(format!("unknown flag {other} for audit")),
                }
            }
            Ok(Command::Audit {
                store: store.ok_or_else(|| "audit requires --store".to_string())?,
                json,
            })
        }
        "serve" => {
            let (mut store, mut addr) = (None, "127.0.0.1:7878".to_owned());
            let (mut workers, mut queue) = (0usize, 256usize);
            let mut timeout_ms = 10_000u64;
            let mut max_requests_per_conn = 1000usize;
            let mut durability = DurabilityPolicy::default();
            let mut scrub_interval_ms = 0u64;
            let mut retain_segments = false;
            while cur.i + 1 < args.len() {
                cur.i += 1;
                match args[cur.i].as_str() {
                    "--store" => store = Some(cur.value("--store")?),
                    "--addr" => addr = cur.value("--addr")?,
                    "--workers" => workers = parse_usize(&cur.value("--workers")?, "workers")?,
                    "--queue" => {
                        queue = parse_usize(&cur.value("--queue")?, "queue depth")?;
                        if queue == 0 {
                            return Err("--queue must be at least 1".into());
                        }
                    }
                    "--timeout-ms" => {
                        timeout_ms = parse_u64(&cur.value("--timeout-ms")?, "timeout")?;
                        if timeout_ms == 0 {
                            return Err("--timeout-ms must be at least 1".into());
                        }
                    }
                    "--max-requests-per-conn" => {
                        max_requests_per_conn =
                            parse_usize(&cur.value("--max-requests-per-conn")?, "request cap")?;
                        if max_requests_per_conn == 0 {
                            return Err("--max-requests-per-conn must be at least 1".into());
                        }
                    }
                    "--durability" => durability = parse_durability(&cur.value("--durability")?)?,
                    "--scrub-interval-ms" => {
                        scrub_interval_ms =
                            parse_u64(&cur.value("--scrub-interval-ms")?, "scrub interval")?;
                    }
                    "--retain-segments" => retain_segments = true,
                    other => return Err(format!("unknown flag {other} for serve")),
                }
            }
            Ok(Command::Serve {
                store: store.ok_or_else(|| "serve requires --store".to_string())?,
                addr,
                workers,
                queue,
                timeout_ms,
                max_requests_per_conn,
                durability,
                scrub_interval_ms,
                retain_segments,
            })
        }
        "info" | "detect" | "stats" | "continue" => {
            let (mut store, mut pattern) = (None, Vec::new());
            let mut any_match = false;
            let mut all_pairs = false;
            let mut method = "accurate".to_string();
            let mut k = 5usize;
            let mut max_gap = None;
            while cur.i + 1 < args.len() {
                cur.i += 1;
                match args[cur.i].as_str() {
                    "--store" => store = Some(cur.value("--store")?),
                    "--pattern" => pattern = split_pattern(&cur.value("--pattern")?),
                    "--any-match" => any_match = true,
                    "--all-pairs" => all_pairs = true,
                    "--method" => method = cur.value("--method")?,
                    "--k" => k = parse_usize(&cur.value("--k")?, "k")?,
                    "--max-gap" => max_gap = Some(parse_u64(&cur.value("--max-gap")?, "max gap")?),
                    other => return Err(format!("unknown flag {other} for {sub}")),
                }
            }
            let store = store.ok_or_else(|| format!("{sub} requires --store"))?;
            match sub.as_str() {
                "info" => Ok(Command::Info { store }),
                "detect" => {
                    require_pattern(&pattern, "detect")?;
                    Ok(Command::Detect { store, pattern, any_match })
                }
                "stats" => {
                    require_pattern(&pattern, "stats")?;
                    Ok(Command::Stats { store, pattern, all_pairs })
                }
                _ => {
                    require_pattern(&pattern, "continue")?;
                    if !["accurate", "fast", "hybrid"].contains(&method.as_str()) {
                        return Err(format!("unknown continuation method {method:?}"));
                    }
                    Ok(Command::Continue { store, pattern, method, k, max_gap })
                }
            }
        }
        "--help" | "-h" | "help" => Err("help requested".into()),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn parse_durability(s: &str) -> Result<DurabilityPolicy, ParseError> {
    DurabilityPolicy::from_name(s)
        .ok_or_else(|| format!("unknown durability policy {s:?} (use always|batch|os)"))
}

fn require_pattern(pattern: &[String], sub: &str) -> Result<(), ParseError> {
    if pattern.is_empty() {
        return Err(format!("{sub} requires --pattern A,B,…"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_gen_profile() {
        let c = parse(&argv("gen --profile bpi_2013 --scale 10 --out x.csv")).unwrap();
        match c {
            Command::Gen { profile, random, scale, out, .. } => {
                assert_eq!(profile.as_deref(), Some("bpi_2013"));
                assert!(random.is_none());
                assert_eq!(scale, 10);
                assert_eq!(out, "x.csv");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_gen_random() {
        let c = parse(&argv("gen --random 100,50,10 --out x.xes --seed 7")).unwrap();
        match c {
            Command::Gen { random, seed, .. } => {
                assert_eq!(random, Some((100, 50, 10)));
                assert_eq!(seed, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gen_requires_exactly_one_source() {
        assert!(parse(&argv("gen --out x.csv")).is_err());
        assert!(parse(&argv("gen --profile a --random 1,1,1 --out x.csv")).is_err());
        assert!(parse(&argv("gen --profile a")).is_err()); // no --out
    }

    #[test]
    fn parse_index_defaults() {
        let c = parse(&argv("index --input a.csv --store dir")).unwrap();
        match c {
            Command::Index { policy, method, threads, partition_period, .. } => {
                assert_eq!(policy, Policy::SkipTillNextMatch);
                assert_eq!(method, StnmMethod::Indexing);
                assert_eq!(threads, 0);
                assert!(partition_period.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_index_full() {
        let c = parse(&argv(
            "index --input a.xes --store d --policy sc --method state --threads 2 --partition-period 100",
        ))
        .unwrap();
        match c {
            Command::Index { policy, method, threads, partition_period, .. } => {
                assert_eq!(policy, Policy::StrictContiguity);
                assert_eq!(method, StnmMethod::State);
                assert_eq!(threads, 2);
                assert_eq!(partition_period, Some(100));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_detect_and_pattern_split() {
        let c = parse(&argv("detect --store d --pattern A,B,C --any-match")).unwrap();
        match c {
            Command::Detect { pattern, any_match, .. } => {
                assert_eq!(pattern, ["A", "B", "C"]);
                assert!(any_match);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("detect --store d")).is_err());
    }

    #[test]
    fn parse_continue_validates_method() {
        let c = parse(&argv("continue --store d --pattern A --method hybrid --k 3")).unwrap();
        match c {
            Command::Continue { method, k, .. } => {
                assert_eq!(method, "hybrid");
                assert_eq!(k, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("continue --store d --pattern A --method bogus")).is_err());
    }

    #[test]
    fn parse_query_statement() {
        let c = parse(&argv("query --store d DETECT_PLACEHOLDER")).unwrap();
        match c {
            Command::Query { store, statement } => {
                assert_eq!(store, "d");
                assert_eq!(statement, "DETECT_PLACEHOLDER");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("query --store d")).is_err());
        assert!(parse(&argv("query DETECT")).is_err());
    }

    #[test]
    fn parse_audit() {
        let c = parse(&argv("audit --store d")).unwrap();
        assert_eq!(c, Command::Audit { store: "d".into(), json: false });
        let c = parse(&argv("audit --store d --json")).unwrap();
        assert!(matches!(c, Command::Audit { json: true, .. }));
        assert!(parse(&argv("audit")).is_err());
        assert!(parse(&argv("audit --store d --bogus")).is_err());
    }

    #[test]
    fn parse_compact() {
        let c = parse(&argv("compact --store d")).unwrap();
        assert_eq!(
            c,
            Command::Compact { store: "d".into(), retention: None, retain_segments: false }
        );
        let c = parse(&argv("compact --store d --retention 3600 --retain-segments")).unwrap();
        assert_eq!(
            c,
            Command::Compact { store: "d".into(), retention: Some(3600), retain_segments: true }
        );
        assert!(parse(&argv("compact")).is_err());
        assert!(parse(&argv("compact --store d --retention soon")).is_err());
        assert!(parse(&argv("compact --store d --bogus")).is_err());
    }

    #[test]
    fn parse_scrub_and_repair() {
        let c = parse(&argv("scrub --store d")).unwrap();
        assert_eq!(c, Command::Scrub { store: "d".into() });
        assert!(parse(&argv("scrub")).is_err());
        assert!(parse(&argv("scrub --store d --bogus")).is_err());

        let c = parse(&argv("repair --store d")).unwrap();
        assert_eq!(c, Command::Repair { store: "d".into(), retain_segments: false });
        let c = parse(&argv("repair --store d --retain-segments")).unwrap();
        assert!(matches!(c, Command::Repair { retain_segments: true, .. }));
        assert!(parse(&argv("repair")).is_err());
    }

    #[test]
    fn parse_retain_segments_and_scrub_interval() {
        let c = parse(&argv("index --input a.csv --store d --retain-segments")).unwrap();
        assert!(matches!(c, Command::Index { retain_segments: true, .. }));
        let c = parse(&argv("index --input a.csv --store d")).unwrap();
        assert!(matches!(c, Command::Index { retain_segments: false, .. }));

        let c = parse(&argv("serve --store d --scrub-interval-ms 5000 --retain-segments")).unwrap();
        assert!(matches!(c, Command::Serve { scrub_interval_ms: 5000, retain_segments: true, .. }));
        // Default: scrubber off, segments swept.
        let c = parse(&argv("serve --store d")).unwrap();
        assert!(matches!(c, Command::Serve { scrub_interval_ms: 0, retain_segments: false, .. }));
        assert!(parse(&argv("serve --store d --scrub-interval-ms soon")).is_err());
    }

    #[test]
    fn parse_serve_defaults() {
        let c = parse(&argv("serve --store d")).unwrap();
        match c {
            Command::Serve {
                store,
                addr,
                workers,
                queue,
                timeout_ms,
                max_requests_per_conn,
                durability,
                ..
            } => {
                assert_eq!(store, "d");
                assert_eq!(addr, "127.0.0.1:7878");
                assert_eq!(workers, 0, "0 = all cores");
                assert_eq!(queue, 256);
                assert_eq!(timeout_ms, 10_000);
                assert_eq!(max_requests_per_conn, 1000);
                assert_eq!(durability, DurabilityPolicy::Batch);
            }
            other => panic!("unexpected {other:?}"),
        }
        let c = parse(&argv("serve --store d --addr 0.0.0.0:9000")).unwrap();
        assert!(matches!(c, Command::Serve { addr, .. } if addr == "0.0.0.0:9000"));
    }

    #[test]
    fn parse_serve_pool_flags() {
        let c = parse(&argv(
            "serve --store d --workers 4 --queue 64 --timeout-ms 2500 --max-requests-per-conn 10",
        ))
        .unwrap();
        match c {
            Command::Serve { workers, queue, timeout_ms, max_requests_per_conn, .. } => {
                assert_eq!(workers, 4);
                assert_eq!(queue, 64);
                assert_eq!(timeout_ms, 2500);
                assert_eq!(max_requests_per_conn, 10);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Degenerate values that would wedge the server are rejected up front.
        assert!(parse(&argv("serve --store d --queue 0")).is_err());
        assert!(parse(&argv("serve --store d --timeout-ms 0")).is_err());
        assert!(parse(&argv("serve --store d --max-requests-per-conn 0")).is_err());
        assert!(parse(&argv("serve --store d --workers nope")).is_err());
    }

    #[test]
    fn parse_posting_format_flag() {
        let c = parse(&argv("index --input a.csv --store d --posting-format v1")).unwrap();
        assert!(matches!(c, Command::Index { posting_format: Some(PostingFormat::V1), .. }));
        let c = parse(&argv("index --input a.csv --store d --posting-format v2")).unwrap();
        assert!(matches!(c, Command::Index { posting_format: Some(PostingFormat::V2), .. }));
        // Unset means "store default": sticky for existing stores, v2 (or
        // the env override) for fresh ones.
        let c = parse(&argv("index --input a.csv --store d")).unwrap();
        assert!(matches!(c, Command::Index { posting_format: None, .. }));
        assert!(parse(&argv("index --input a.csv --store d --posting-format v3")).is_err());
    }

    #[test]
    fn parse_durability_flag() {
        let c = parse(&argv("index --input a.csv --store d --durability always")).unwrap();
        assert!(matches!(c, Command::Index { durability: DurabilityPolicy::Always, .. }));
        let c = parse(&argv("index --input a.csv --store d")).unwrap();
        assert!(matches!(c, Command::Index { durability: DurabilityPolicy::Batch, .. }));
        let c = parse(&argv("serve --store d --durability os")).unwrap();
        assert!(matches!(c, Command::Serve { durability: DurabilityPolicy::Os, .. }));
        assert!(parse(&argv("index --input a.csv --store d --durability paranoid")).is_err());
    }

    #[test]
    fn unknown_subcommand_and_flags() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("info --store d --bogus")).is_err());
        assert!(parse(&[]).is_err());
    }
}
