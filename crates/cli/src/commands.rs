//! Command execution.

use crate::args::Command;
use seqdet_core::{IndexConfig, Indexer};
use seqdet_datagen::{DatasetProfile, RandomLogSpec};
use seqdet_log::{csv, xes, EventLog, Pattern};
use seqdet_query::{ContinuationMethod, QueryEngine};
use seqdet_storage::{DiskOptions, DiskStore, DurabilityPolicy, KvStore, StoreMetrics};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::sync::Arc;

/// Boxed error for the CLI surface.
pub type CliError = Box<dyn std::error::Error>;

/// Execute one parsed command.
pub fn run(cmd: Command) -> Result<(), CliError> {
    match cmd {
        Command::Gen { profile, random, scale, seed, out } => {
            gen(profile, random, scale, seed, &out)
        }
        Command::Index {
            input,
            store,
            policy,
            method,
            threads,
            partition_period,
            durability,
            posting_format,
            retain_segments,
        } => {
            let log = load_log(&input)?;
            let mut cfg = IndexConfig::new(policy).with_method(method).with_threads(threads);
            if let Some(p) = partition_period {
                cfg = cfg.with_partition_period(p);
            }
            if let Some(f) = posting_format {
                cfg = cfg.with_posting_format(f);
            }
            let disk = Arc::new(open_store(&store, durability, None, retain_segments)?);
            let mut indexer = Indexer::with_store(disk.clone(), cfg)?;
            // The config (and posting format) is persisted now — runs
            // written by size-triggered compaction get real zone maps.
            seqdet_core::install_zone_extractor(&disk);
            let start = std::time::Instant::now();
            let stats = indexer.index_log(&log)?;
            disk.flush()?;
            println!(
                "indexed {} traces / {} new events ({} skipped as duplicates), {} new pairs in {:.3}s",
                stats.traces,
                stats.new_events,
                stats.skipped_events,
                stats.new_pairs,
                start.elapsed().as_secs_f64()
            );
            Ok(())
        }
        Command::Info { store } => {
            let disk = Arc::new(DiskStore::open(&store)?);
            let engine = QueryEngine::new(disk.clone())?;
            println!("store: {store}");
            println!("posting format: {}", seqdet_core::posting_format(disk.as_ref()).name());
            println!("activities: {}", engine.catalog().num_activities());
            println!("traces: {}", engine.catalog().num_traces());
            let stats = seqdet_core::IndexStats::collect(disk.as_ref())?;
            println!("open traces (Seq rows): {} ({} bytes)", stats.seq_rows, stats.seq_bytes);
            println!(
                "indexed pairs: {} ({} postings, {:.1} per pair, {} bytes, {} partition(s))",
                stats.index_rows,
                stats.postings,
                stats.avg_postings_per_pair(),
                stats.index_bytes,
                stats.partitions
            );
            println!("count rows: {} / reverse {}", stats.count_rows, stats.reverse_count_rows);
            println!("last-checked pairs: {}", stats.last_checked_rows);
            println!("segments on disk: {}", disk.num_segments()?);
            println!("runs on disk: {}", disk.num_runs());
            print_health(&disk);
            Ok(())
        }
        Command::Detect { store, pattern, any_match } => {
            let disk = Arc::new(DiskStore::open(&store)?);
            let engine = QueryEngine::new(disk)?;
            let names: Vec<&str> = pattern.iter().map(String::as_str).collect();
            let p: Pattern = engine.pattern(&names)?;
            if any_match {
                let r = engine.detect_any_match(&p, 3)?;
                println!("{} embeddings in {} traces", r.total(), r.num_traces());
                for t in r.traces.iter().take(20) {
                    println!(
                        "  {}: {} embeddings, e.g. {:?}",
                        engine.catalog().trace_name(t.trace).unwrap_or("?"),
                        t.count,
                        t.examples.first().map(Vec::as_slice).unwrap_or(&[])
                    );
                }
            } else {
                let r = engine.detect(&p)?;
                println!("{} completions in {} traces", r.total_completions(), r.traces().len());
                for m in r.matches.iter().take(20) {
                    println!(
                        "  {} @ {:?}",
                        engine.catalog().trace_name(m.trace).unwrap_or("?"),
                        m.timestamps
                    );
                }
                if r.total_completions() > 20 {
                    println!("  … ({} more)", r.total_completions() - 20);
                }
            }
            Ok(())
        }
        Command::Stats { store, pattern, all_pairs } => {
            let disk = Arc::new(DiskStore::open(&store)?);
            let engine = QueryEngine::new(disk)?;
            let names: Vec<&str> = pattern.iter().map(String::as_str).collect();
            let p: Pattern = engine.pattern(&names)?;
            let s = if all_pairs { engine.stats_all_pairs(&p)? } else { engine.stats(&p)? };
            for ps in &s.pairs {
                println!(
                    "  ({}, {}): {} completions, avg duration {:.2}, last at {:?}",
                    engine.catalog().activity_name(ps.pair.0).unwrap_or("?"),
                    engine.catalog().activity_name(ps.pair.1).unwrap_or("?"),
                    ps.completions,
                    ps.avg_duration,
                    ps.last_completion
                );
            }
            println!("whole-pattern completions ≤ {}", s.max_completions);
            println!("estimated whole-pattern duration ≈ {:.2}", s.est_duration);
            Ok(())
        }
        Command::Audit { store, json } => {
            let outcome = seqdet_core::audit_disk(std::path::Path::new(&store))?;
            if json {
                println!("{}", outcome.to_json());
            } else {
                print!("{}", outcome.to_text());
            }
            if outcome.ok() {
                Ok(())
            } else {
                Err("audit found violations".into())
            }
        }
        Command::Compact { store, retention, retain_segments } => {
            let disk = open_store(&store, DurabilityPolicy::default(), None, retain_segments)?;
            seqdet_core::install_zone_extractor(&disk);
            let start = std::time::Instant::now();
            disk.compact()?;
            println!(
                "compacted into {} run(s) ({} segment(s) remain) in {:.3}s",
                disk.num_runs(),
                disk.num_segments()?,
                start.elapsed().as_secs_f64()
            );
            if let Some(ttl) = retention {
                // Age runs against the newest timestamp any run covers, not
                // the wall clock — event time and wall time need not agree.
                match disk.run_time_range() {
                    Some((_, newest)) => {
                        let cutoff = newest.saturating_sub(ttl);
                        let dropped = disk.drop_expired_runs(cutoff)?;
                        if dropped > 0 {
                            // Dropped runs change query-visible contents:
                            // invalidate generation-stamped caches.
                            seqdet_core::indexer::bump_index_generation(&disk)?;
                        }
                        println!(
                            "retention: dropped {dropped} run(s) older than {cutoff} \
                             (newest {newest}, ttl {ttl})"
                        );
                    }
                    None => println!("retention: no runs carry time zones; nothing to expire"),
                }
            }
            Ok(())
        }
        Command::Scrub { store } => {
            let disk = DiskStore::open(&store)?;
            let start = std::time::Instant::now();
            let outcome = disk.scrub();
            println!(
                "scrubbed {} run(s), {} newly quarantined in {:.3}s",
                outcome.runs_checked,
                outcome.newly_quarantined,
                start.elapsed().as_secs_f64()
            );
            print_health(&disk);
            // Nonzero exit while *any* quarantine is live, not just fresh
            // ones: open() already quarantines damage it finds, and a cron
            // invocation must keep failing until the store is repaired.
            if !disk.quarantine().is_empty() {
                Err("store has quarantined runs (see above; run `seqdet repair`)".into())
            } else {
                Ok(())
            }
        }
        Command::Repair { store, retain_segments } => {
            let disk = open_store(&store, DurabilityPolicy::default(), None, retain_segments)?;
            seqdet_core::install_zone_extractor(&disk);
            let start = std::time::Instant::now();
            let outcome = disk.repair()?;
            if outcome.repaired > 0 {
                // Repair changes query-visible contents: invalidate
                // generation-stamped caches, exactly like retention drops.
                seqdet_core::indexer::bump_index_generation(&disk)?;
            }
            println!(
                "repaired {} quarantined run(s) ({}) in {:.3}s",
                outcome.repaired,
                if outcome.full_history {
                    "lossless: rebuilt from the full segment history"
                } else {
                    "bounded loss: rebuilt from surviving runs and the live delta"
                },
                start.elapsed().as_secs_f64()
            );
            print_health(&disk);
            Ok(())
        }
        Command::Query { store, statement } => {
            let disk = Arc::new(DiskStore::open(&store)?);
            let engine = QueryEngine::new(disk.clone())?;
            let catalog = seqdet_core::Catalog::load(disk.as_ref())?;
            let output = seqdet_query::lang::run(&engine, &statement)?;
            print!("{}", seqdet_server::render::render(&catalog, &output));
            Ok(())
        }
        Command::Serve {
            store,
            addr,
            workers,
            queue,
            timeout_ms,
            max_requests_per_conn,
            durability,
            scrub_interval_ms,
            retain_segments,
        } => {
            // Share one metrics handle between the store and the server so
            // `/stats/server` reports real batch/fsync/degraded counters.
            let metrics = Arc::new(StoreMetrics::new());
            let disk = Arc::new(open_store(
                &store,
                durability,
                Some(Arc::clone(&metrics)),
                retain_segments,
            )?);
            seqdet_core::install_zone_extractor(&disk);
            // Background scrubber (off by default): periodically re-reads
            // every run so bit rot surfaces as quarantine between queries,
            // not inside one. The handle stops the thread on shutdown.
            let _scrubber = if scrub_interval_ms > 0 {
                Some(DiskStore::spawn_scrubber(
                    Arc::clone(&disk),
                    std::time::Duration::from_millis(scrub_interval_ms),
                    std::time::Duration::from_millis(1),
                )?)
            } else {
                None
            };
            let timeout = std::time::Duration::from_millis(timeout_ms);
            let config = seqdet_server::ServeConfig {
                workers,
                queue_depth: queue,
                read_timeout: timeout,
                write_timeout: timeout,
                max_requests_per_conn,
                ..seqdet_server::ServeConfig::default()
            };
            let n_workers = config.effective_workers();
            let server = seqdet_server::QueryServer::bind_with_metrics(
                addr.as_str(),
                disk,
                config,
                metrics,
            )?;
            println!("seqdet query service listening on {}", server.local_addr()?);
            println!("workers={n_workers} queue={queue} timeout={timeout_ms}ms");
            println!("try: curl 'http://{addr}/query?q=DETECT%20a%20-%3E%20b'");
            server.serve_forever()?;
            Ok(())
        }
        Command::Continue { store, pattern, method, k, max_gap } => {
            let disk = Arc::new(DiskStore::open(&store)?);
            let engine = QueryEngine::new(disk)?;
            let names: Vec<&str> = pattern.iter().map(String::as_str).collect();
            let p: Pattern = engine.pattern(&names)?;
            let m = match method.as_str() {
                "fast" => ContinuationMethod::Fast,
                "hybrid" => ContinuationMethod::Hybrid { k, max_gap },
                _ => ContinuationMethod::Accurate { max_gap },
            };
            let props = engine.continuations(&p, m)?;
            println!("{:<20} {:>12} {:>12} {:>10}", "activity", "completions", "avg dur", "score");
            for pr in props.iter().take(15) {
                println!(
                    "{:<20} {:>12} {:>12.2} {:>10.4}",
                    engine.catalog().activity_name(pr.activity).unwrap_or("?"),
                    pr.completions,
                    pr.avg_duration,
                    pr.score()
                );
            }
            Ok(())
        }
    }
}

fn gen(
    profile: Option<String>,
    random: Option<(usize, usize, usize)>,
    scale: usize,
    seed: u64,
    out: &str,
) -> Result<(), CliError> {
    let log = match (profile, random) {
        (Some(name), None) => {
            let p = DatasetProfile::by_name(&name)
                .ok_or_else(|| format!("unknown profile {name:?}"))?;
            p.scaled(scale).generate_seeded(seed)
        }
        (None, Some((traces, events, acts))) => {
            RandomLogSpec { traces, events_per_trace: events, activities: acts, seed }.generate()
        }
        _ => unreachable!("parser enforces exactly one source"),
    };
    save_log(&log, out)?;
    println!(
        "wrote {} traces / {} events / {} activities to {out}",
        log.num_traces(),
        log.num_events(),
        log.num_activities()
    );
    Ok(())
}

fn open_store(
    dir: &str,
    durability: DurabilityPolicy,
    metrics: Option<Arc<StoreMetrics>>,
    retain_segments: bool,
) -> Result<DiskStore, CliError> {
    Ok(DiskStore::open_with(
        dir,
        DiskOptions { durability, metrics, retain_segments, ..DiskOptions::default() },
    )?)
}

/// Print the store's failure state: the sticky degraded reason (writes
/// refused) and the quarantine ledger (answers narrowed), or a single
/// healthy line when neither applies.
fn print_health(disk: &DiskStore) {
    let degraded = KvStore::degraded(disk);
    let quarantine = disk.quarantine();
    if degraded.is_none() && quarantine.is_empty() {
        println!("health: ok (full coverage)");
        return;
    }
    if let Some(reason) = degraded {
        println!("health: DEGRADED (writes refused): {reason}");
    }
    if !quarantine.is_empty() {
        println!(
            "health: NARROWED — {} run(s) quarantined; answers may be missing rows \
             until `seqdet repair`",
            quarantine.len()
        );
        for e in quarantine.entries() {
            let records = e
                .records
                .map(|n| format!("{n} record(s)"))
                .unwrap_or_else(|| "unknown record count".to_owned());
            println!(
                "  table {} run {:06}: {} ({records}) at {}",
                e.table.0,
                e.id,
                e.reason,
                e.path.display()
            );
        }
    }
}

fn load_log(path: &str) -> Result<EventLog, CliError> {
    let reader = BufReader::new(File::open(path)?);
    if path.ends_with(".xes") {
        Ok(xes::read_xes(reader)?)
    } else {
        Ok(csv::read_csv(reader)?)
    }
}

fn save_log(log: &EventLog, path: &str) -> Result<(), CliError> {
    let writer = BufWriter::new(File::create(path)?);
    if path.ends_with(".xes") {
        xes::write_xes(log, writer)?;
    } else {
        csv::write_csv(log, writer)?;
    }
    Ok(())
}
