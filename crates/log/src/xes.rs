//! Minimal XES (eXtensible Event Stream) reader/writer.
//!
//! The paper's datasets "are in the XES format" (§5.1). XES is an XML
//! dialect; the structurally relevant subset is
//!
//! ```xml
//! <log>
//!   <trace>
//!     <string key="concept:name" value="case-17"/>
//!     <event>
//!       <string key="concept:name" value="Submit"/>
//!       <date key="time:timestamp" value="2017-01-02T12:00:00.000+00:00"/>
//!     </event>
//!   </trace>
//! </log>
//! ```
//!
//! This module implements a self-contained tag-level XML scanner (we cannot
//! pull an XML crate) that understands exactly this subset: `trace`/`event`
//! nesting and `string`/`date`/`int` attribute elements. Unknown elements and
//! attributes are skipped. Timestamps are converted to epoch milliseconds;
//! events without a timestamp get their per-trace position (the paper's
//! positional fallback).

use crate::error::LogError;
use crate::trace::{EventLog, EventLogBuilder, Ts};
use crate::Result;
use std::io::{BufRead, Write};

/// One scanned XML tag.
#[derive(Debug, PartialEq)]
enum Tag {
    /// `<name attr="v" …>`; bool = self-closing.
    Open { name: String, attrs: Vec<(String, String)>, self_closing: bool },
    /// `</name>`
    Close(String),
}

/// Decode the five predefined XML entities.
fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_owned();
    }
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Encode text for attribute values.
fn encode_entities(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Tag-level scanner over the full document text.
struct Scanner<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Self { text, pos: 0 }
    }

    /// Next tag, skipping text content, comments, PIs and the XML decl.
    fn next_tag(&mut self) -> Result<Option<Tag>> {
        loop {
            let rest = &self.text[self.pos..];
            let Some(lt) = rest.find('<') else { return Ok(None) };
            let start = self.pos + lt;
            let after = &self.text[start..];
            if after.starts_with("<!--") {
                let end = after.find("-->").ok_or_else(|| parse_err("unterminated comment"))?;
                self.pos = start + end + 3;
                continue;
            }
            if after.starts_with("<?") {
                let end = after.find("?>").ok_or_else(|| parse_err("unterminated PI"))?;
                self.pos = start + end + 2;
                continue;
            }
            if after.starts_with("<!") {
                // DOCTYPE etc. — skip to the matching '>'
                let end = after.find('>').ok_or_else(|| parse_err("unterminated declaration"))?;
                self.pos = start + end + 1;
                continue;
            }
            let end = after.find('>').ok_or_else(|| parse_err("unterminated tag"))?;
            let inner = &after[1..end];
            self.pos = start + end + 1;
            if let Some(name) = inner.strip_prefix('/') {
                return Ok(Some(Tag::Close(name.trim().to_owned())));
            }
            let self_closing = inner.ends_with('/');
            let inner = inner.strip_suffix('/').unwrap_or(inner).trim();
            let (name, attr_text) = match inner.find(char::is_whitespace) {
                Some(i) => (&inner[..i], inner[i..].trim()),
                None => (inner, ""),
            };
            let attrs = parse_attrs(attr_text)?;
            return Ok(Some(Tag::Open { name: name.to_owned(), attrs, self_closing }));
        }
    }
}

fn parse_err(message: &str) -> LogError {
    LogError::Parse { line: 0, message: message.to_owned() }
}

/// Parse `key="value"` pairs.
fn parse_attrs(mut s: &str) -> Result<Vec<(String, String)>> {
    let mut attrs = Vec::new();
    loop {
        s = s.trim_start();
        if s.is_empty() {
            return Ok(attrs);
        }
        let eq = s.find('=').ok_or_else(|| parse_err("attribute without '='"))?;
        let key = s[..eq].trim().to_owned();
        let rest = s[eq + 1..].trim_start();
        let quote = rest.chars().next().filter(|&c| c == '"' || c == '\'');
        let Some(q) = quote else { return Err(parse_err("unquoted attribute value")) };
        let body = &rest[1..];
        let close = body.find(q).ok_or_else(|| parse_err("unterminated attribute value"))?;
        attrs.push((key, decode_entities(&body[..close])));
        s = &body[close + 1..];
    }
}

fn attr<'a>(attrs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

// ---------------------------------------------------------------------------
// ISO-8601 timestamp handling (epoch milliseconds)
// ---------------------------------------------------------------------------

/// Days from civil date (Howard Hinnant's algorithm); valid far beyond the
/// range any event log uses.
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = (mp + 2) % 12 + 1;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parse an ISO-8601 timestamp (`YYYY-MM-DDTHH:MM:SS[.fff][Z|±HH:MM]`) into
/// epoch milliseconds. Returns `None` on malformed input.
pub fn parse_iso8601_millis(s: &str) -> Option<i64> {
    let s = s.trim();
    let bytes = s.as_bytes();
    if bytes.len() < 19 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let sep = bytes[10];
    if sep != b'T' && sep != b' ' {
        return None;
    }
    let year: i64 = s[0..4].parse().ok()?;
    let month: i64 = s[5..7].parse().ok()?;
    let day: i64 = s[8..10].parse().ok()?;
    let hour: i64 = s[11..13].parse().ok()?;
    let min: i64 = s[14..16].parse().ok()?;
    let sec: i64 = s[17..19].parse().ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    let mut rest = &s[19..];
    let mut millis = 0i64;
    if let Some(frac) = rest.strip_prefix('.') {
        let digits: String = frac.chars().take_while(|c| c.is_ascii_digit()).collect();
        let consumed = digits.len();
        if consumed == 0 {
            return None;
        }
        let scaled: i64 = digits[..consumed.min(3)].parse().ok()?;
        millis = match consumed.min(3) {
            1 => scaled * 100,
            2 => scaled * 10,
            _ => scaled,
        };
        rest = &frac[consumed..];
    }
    let offset_min: i64 = if rest.is_empty() || rest.eq_ignore_ascii_case("Z") {
        0
    } else {
        let sign = match rest.chars().next()? {
            '+' => 1,
            '-' => -1,
            _ => return None,
        };
        let body = &rest[1..];
        let (h, m) = if let Some((h, m)) = body.split_once(':') {
            (h.parse::<i64>().ok()?, m.parse::<i64>().ok()?)
        } else if body.len() == 4 {
            (body[..2].parse().ok()?, body[2..].parse().ok()?)
        } else if body.len() == 2 {
            (body.parse().ok()?, 0)
        } else {
            return None;
        };
        sign * (h * 60 + m)
    };
    let days = days_from_civil(year, month, day);
    let secs = days * 86_400 + hour * 3600 + min * 60 + sec - offset_min * 60;
    Some(secs * 1000 + millis)
}

/// Format epoch milliseconds as UTC ISO-8601 (`YYYY-MM-DDTHH:MM:SS.fffZ`).
pub fn format_iso8601_millis(ms: i64) -> String {
    let (days, rem) = (ms.div_euclid(86_400_000), ms.rem_euclid(86_400_000));
    let (y, mo, d) = civil_from_days(days);
    let (h, rem) = (rem / 3_600_000, rem % 3_600_000);
    let (mi, rem) = (rem / 60_000, rem % 60_000);
    let (s, ms) = (rem / 1000, rem % 1000);
    format!("{y:04}-{mo:02}-{d:02}T{h:02}:{mi:02}:{s:02}.{ms:03}Z")
}

// ---------------------------------------------------------------------------
// XES reading / writing
// ---------------------------------------------------------------------------

/// Read an XES document into an [`EventLog`].
pub fn read_xes<R: BufRead>(mut reader: R) -> Result<EventLog> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    read_xes_str(&text)
}

/// Read an XES document from a string.
pub fn read_xes_str(text: &str) -> Result<EventLog> {
    let mut builder = EventLogBuilder::new();
    let mut scanner = Scanner::new(text);
    let mut anon_trace = 0usize;

    // Parser state machine over trace/event nesting.
    let mut in_trace = false;
    let mut in_event = false;
    let mut trace_name: Option<String> = None;
    let mut pending_events: Vec<(Option<String>, Option<Ts>)> = Vec::new();
    let mut cur_activity: Option<String> = None;
    let mut cur_ts: Option<Ts> = None;

    while let Some(tag) = scanner.next_tag()? {
        match tag {
            Tag::Open { name, attrs, self_closing } => match name.as_str() {
                "trace" if !self_closing => {
                    in_trace = true;
                    trace_name = None;
                    pending_events.clear();
                }
                "event" if in_trace && !self_closing => {
                    in_event = true;
                    cur_activity = None;
                    cur_ts = None;
                }
                "string" if attr(&attrs, "key") == Some("concept:name") => {
                    let value = attr(&attrs, "value").unwrap_or("").to_owned();
                    if in_event {
                        cur_activity = Some(value);
                    } else if in_trace {
                        trace_name = Some(value);
                    }
                }
                "date" if in_event && attr(&attrs, "key") == Some("time:timestamp") => {
                    let v = attr(&attrs, "value").unwrap_or("");
                    let ms = parse_iso8601_millis(v).ok_or_else(|| LogError::Parse {
                        line: 0,
                        message: format!("invalid time:timestamp {v:?}"),
                    })?;
                    cur_ts = Some(ms.max(0) as Ts);
                }
                "int" if in_event && attr(&attrs, "key") == Some("time:timestamp") => {
                    let v = attr(&attrs, "value").unwrap_or("");
                    let ts: Ts = v.parse().map_err(|_| LogError::Parse {
                        line: 0,
                        message: format!("invalid int timestamp {v:?}"),
                    })?;
                    cur_ts = Some(ts);
                }
                _ => {}
            },
            Tag::Close(name) => match name.as_str() {
                "event" if in_event => {
                    in_event = false;
                    pending_events.push((cur_activity.take(), cur_ts.take()));
                }
                "trace" if in_trace => {
                    in_trace = false;
                    let tname = trace_name.take().unwrap_or_else(|| {
                        anon_trace += 1;
                        format!("trace-{anon_trace}")
                    });
                    for (act, ts) in pending_events.drain(..) {
                        let act = act.unwrap_or_else(|| "unknown".to_owned());
                        match ts {
                            Some(ts) => {
                                builder.add(&tname, &act, ts);
                            }
                            None => {
                                builder.add_positional(&tname, &act);
                            }
                        }
                    }
                }
                _ => {}
            },
        }
    }
    Ok(builder.build())
}

/// Write an [`EventLog`] as an XES document. Timestamps are emitted as
/// `<int key="time:timestamp">` to round-trip exactly.
pub fn write_xes<W: Write>(log: &EventLog, mut out: W) -> Result<()> {
    writeln!(out, "<?xml version=\"1.0\" encoding=\"UTF-8\"?>")?;
    writeln!(out, "<log xes.version=\"1.0\">")?;
    for trace in log.traces() {
        let tname = log.trace_name(trace.id()).unwrap_or("?");
        writeln!(out, "  <trace>")?;
        writeln!(out, "    <string key=\"concept:name\" value=\"{}\"/>", encode_entities(tname))?;
        for ev in trace.events() {
            let aname = log.activity_name(ev.activity).unwrap_or("?");
            writeln!(out, "    <event>")?;
            writeln!(
                out,
                "      <string key=\"concept:name\" value=\"{}\"/>",
                encode_entities(aname)
            )?;
            writeln!(out, "      <int key=\"time:timestamp\" value=\"{}\"/>", ev.ts)?;
            writeln!(out, "    </event>")?;
        }
        writeln!(out, "  </trace>")?;
    }
    writeln!(out, "</log>")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = r#"<?xml version="1.0"?>
<!-- exported by a tool -->
<log xes.version="1.0">
  <string key="concept:name" value="whole log name"/>
  <trace>
    <string key="concept:name" value="case1"/>
    <event>
      <string key="concept:name" value="A"/>
      <date key="time:timestamp" value="2020-01-01T00:00:00.000+00:00"/>
    </event>
    <event>
      <string key="concept:name" value="B"/>
      <date key="time:timestamp" value="2020-01-01T00:00:01Z"/>
    </event>
  </trace>
  <trace>
    <string key="concept:name" value="case2"/>
    <event><string key="concept:name" value="A"/></event>
    <event><string key="concept:name" value="A"/></event>
  </trace>
</log>"#;

    #[test]
    fn parse_sample_document() {
        let log = read_xes_str(SAMPLE).unwrap();
        assert_eq!(log.num_traces(), 2);
        assert_eq!(log.num_events(), 4);
        assert_eq!(log.num_activities(), 2);
        let c1 = log.trace_by_name("case1").unwrap();
        assert_eq!(c1.events()[1].ts - c1.events()[0].ts, 1000);
        // case2 has positional stamps
        let c2 = log.trace_by_name("case2").unwrap();
        assert_eq!(c2.events().iter().map(|e| e.ts).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn log_level_concept_name_is_not_a_trace_name() {
        let log = read_xes_str(SAMPLE).unwrap();
        assert!(log.trace_by_name("whole log name").is_none());
    }

    #[test]
    fn roundtrip_via_writer() {
        let log = read_xes_str(SAMPLE).unwrap();
        let mut buf = Vec::new();
        write_xes(&log, &mut buf).unwrap();
        let log2 = read_xes(Cursor::new(buf)).unwrap();
        assert_eq!(log2.num_events(), log.num_events());
        assert_eq!(
            log2.trace_by_name("case1").unwrap().as_pairs(),
            log.trace_by_name("case1").unwrap().as_pairs()
        );
    }

    #[test]
    fn entities_roundtrip() {
        let mut b = crate::trace::EventLogBuilder::new();
        b.add("a<b>&\"'", "x&y", 1);
        let log = b.build();
        let mut buf = Vec::new();
        write_xes(&log, &mut buf).unwrap();
        let log2 = read_xes(Cursor::new(buf)).unwrap();
        assert!(log2.trace_by_name("a<b>&\"'").is_some());
        assert!(log2.activity("x&y").is_some());
    }

    #[test]
    fn iso8601_epoch_and_offsets() {
        assert_eq!(parse_iso8601_millis("1970-01-01T00:00:00Z"), Some(0));
        assert_eq!(parse_iso8601_millis("1970-01-01T00:00:00.5Z"), Some(500));
        assert_eq!(parse_iso8601_millis("1970-01-01T01:00:00+01:00"), Some(0));
        assert_eq!(parse_iso8601_millis("1969-12-31T23:00:00-01:00"), Some(0));
        assert_eq!(parse_iso8601_millis("2020-01-01T00:00:00.123+00:00"), Some(1_577_836_800_123));
        assert_eq!(parse_iso8601_millis("not a date"), None);
        assert_eq!(parse_iso8601_millis("2020-13-01T00:00:00Z"), None);
    }

    #[test]
    fn iso8601_format_parses_back() {
        for ms in [0i64, 1, 999, 1_577_836_800_123, 86_400_000] {
            let s = format_iso8601_millis(ms);
            assert_eq!(parse_iso8601_millis(&s), Some(ms), "roundtrip of {s}");
        }
    }

    #[test]
    fn malformed_timestamp_is_an_error() {
        let doc = r#"<log><trace><string key="concept:name" value="t"/>
            <event><string key="concept:name" value="A"/>
            <date key="time:timestamp" value="garbage"/></event></trace></log>"#;
        assert!(read_xes_str(doc).is_err());
    }

    #[test]
    fn unknown_elements_are_skipped() {
        let doc = r#"<log><extension name="x"/><global scope="event"><string key="k" value="v"/></global>
          <trace><string key="concept:name" value="t"/>
          <event><string key="concept:name" value="A"/><string key="org:resource" value="bob"/>
          <int key="time:timestamp" value="42"/></event></trace></log>"#;
        let log = read_xes_str(doc).unwrap();
        assert_eq!(log.num_events(), 1);
        assert_eq!(log.trace_by_name("t").unwrap().events()[0].ts, 42);
    }

    #[test]
    fn civil_day_conversion_is_bijective() {
        for z in (-1_000_000..1_000_000).step_by(9973) {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }
}
