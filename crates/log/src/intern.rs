//! Activity (event-type) interning.
//!
//! The paper's set `A` of activities is typically small (4 — 2000 in the
//! evaluation) while the event set `E` is large (up to millions). Interning
//! activity names into dense [`Activity`] ids keeps events at 12 bytes and
//! lets the pair index pack an activity pair into a single `u64` key.

use std::collections::HashMap;

/// A dense identifier for an activity (event type). `Activity(0)` is the
/// first activity ever interned. The identifier is only meaningful relative
/// to the [`ActivityInterner`] that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Activity(pub u32);

impl Activity {
    /// Raw id as a `usize`, handy for indexing per-activity vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Pack an ordered pair of activities into one `u64` key
    /// (`a` in the high 32 bits). Used as the key of the paper's
    /// `Index`/`LastChecked` tables.
    #[inline]
    pub fn pair_key(a: Activity, b: Activity) -> u64 {
        ((a.0 as u64) << 32) | b.0 as u64
    }

    /// Inverse of [`Activity::pair_key`].
    #[inline]
    pub fn unpack_pair(key: u64) -> (Activity, Activity) {
        (Activity((key >> 32) as u32), Activity(key as u32))
    }
}

impl std::fmt::Display for Activity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Bidirectional mapping between activity names and [`Activity`] ids.
///
/// Ids are issued densely in first-seen order, so `len()` ids exist in
/// `0..len()` and per-activity tables can be plain vectors.
#[derive(Debug, Default, Clone)]
pub struct ActivityInterner {
    names: Vec<String>,
    by_name: HashMap<String, Activity>,
}

impl ActivityInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> Activity {
        if let Some(&a) = self.by_name.get(name) {
            return a;
        }
        let a = Activity(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), a);
        a
    }

    /// Look up the id of a name without interning.
    pub fn get(&self, name: &str) -> Option<Activity> {
        self.by_name.get(name).copied()
    }

    /// Resolve an id back to its name. Returns `None` for ids this interner
    /// never issued.
    pub fn name(&self, a: Activity) -> Option<&str> {
        self.names.get(a.index()).map(String::as_str)
    }

    /// Number of distinct activities interned so far (the paper's `l = |A|`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no activity has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(Activity, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Activity, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (Activity(i as u32), n.as_str()))
    }

    /// All issued ids, in order.
    pub fn activities(&self) -> impl Iterator<Item = Activity> + '_ {
        (0..self.names.len() as u32).map(Activity)
    }
}

/// A dense identifier for an event-attribute *key* (e.g. `amount`,
/// `region`). Like [`Activity`], the id is only meaningful relative to the
/// [`AttrInterner`] that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Attr(pub u32);

impl Attr {
    /// Raw id as a `usize`, handy for indexing per-attribute vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Attr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Bidirectional mapping between attribute-key names and [`Attr`] ids —
/// the attribute-key counterpart of [`ActivityInterner`]. Attribute *keys*
/// are few (a schema), attribute *values* are many; interning the keys keeps
/// per-event attribute records at a fixed 20 bytes.
#[derive(Debug, Default, Clone)]
pub struct AttrInterner {
    names: Vec<String>,
    by_name: HashMap<String, Attr>,
}

impl AttrInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> Attr {
        if let Some(&a) = self.by_name.get(name) {
            return a;
        }
        let a = Attr(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), a);
        a
    }

    /// Look up the id of a name without interning.
    pub fn get(&self, name: &str) -> Option<Attr> {
        self.by_name.get(name).copied()
    }

    /// Resolve an id back to its name.
    pub fn name(&self, a: Attr) -> Option<&str> {
        self.names.get(a.index()).map(String::as_str)
    }

    /// Number of distinct attribute keys interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no key has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(Attr, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Attr, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (Attr(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut it = ActivityInterner::new();
        let a = it.intern("submit");
        let b = it.intern("approve");
        let a2 = it.intern("submit");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a, Activity(0));
        assert_eq!(b, Activity(1));
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn roundtrip_names() {
        let mut it = ActivityInterner::new();
        let a = it.intern("x");
        assert_eq!(it.name(a), Some("x"));
        assert_eq!(it.get("x"), Some(a));
        assert_eq!(it.get("y"), None);
        assert_eq!(it.name(Activity(99)), None);
    }

    #[test]
    fn pair_key_roundtrip() {
        let a = Activity(7);
        let b = Activity(123_456);
        let k = Activity::pair_key(a, b);
        assert_eq!(Activity::unpack_pair(k), (a, b));
        // order matters
        assert_ne!(k, Activity::pair_key(b, a));
    }

    #[test]
    fn pair_key_is_injective_on_extremes() {
        let cases = [0u32, 1, u32::MAX - 1, u32::MAX];
        let mut seen = std::collections::HashSet::new();
        for &x in &cases {
            for &y in &cases {
                assert!(seen.insert(Activity::pair_key(Activity(x), Activity(y))));
            }
        }
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut it = ActivityInterner::new();
        it.intern("c");
        it.intern("a");
        it.intern("b");
        let names: Vec<&str> = it.iter().map(|(_, n)| n).collect();
        assert_eq!(names, ["c", "a", "b"]);
        let ids: Vec<Activity> = it.activities().collect();
        assert_eq!(ids, [Activity(0), Activity(1), Activity(2)]);
    }
}
