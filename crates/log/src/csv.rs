//! CSV event-log reader/writer.
//!
//! The log database of the paper has "a typical relational form, where each
//! record corresponds to a specific event … the trace identifier, the event
//! type, the timestamp" (§3.1). This module reads and writes exactly that
//! relation as `trace,activity,timestamp` CSV rows.
//!
//! * A header row (`trace,activity,timestamp`, case-insensitive) is skipped
//!   if present.
//! * The timestamp column may be omitted (2-column rows); the event then
//!   receives its per-trace position, per the paper's positional fallback.
//! * Columns past the timestamp carry integer event attributes as
//!   `key=value` (e.g. `case-1,checkout,42,amount=150`) — the data the
//!   rich-pattern predicates (`DETECT a[amount > 100]`) filter on.
//! * Fields containing commas can be double-quoted; `""` escapes a quote.

use crate::error::LogError;
use crate::trace::{EventLog, EventLogBuilder, Ts};
use crate::Result;
use std::io::{BufRead, Write};

/// Parse one CSV line into fields, honouring double quotes.
fn split_csv(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            '"' if cur.is_empty() => quoted = true,
            ',' if !quoted => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Quote a field if it needs quoting.
fn quote_csv(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Read an event log from CSV.
pub fn read_csv<R: BufRead>(reader: R) -> Result<EventLog> {
    let mut builder = EventLogBuilder::new();
    read_csv_into(reader, &mut builder)?;
    Ok(builder.build())
}

/// Read CSV records into an existing builder (used to merge batches while
/// keeping activity ids stable).
pub fn read_csv_into<R: BufRead>(reader: R, builder: &mut EventLogBuilder) -> Result<()> {
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields = split_csv(trimmed);
        if i == 0 && fields.first().is_some_and(|f| f.eq_ignore_ascii_case("trace")) {
            continue; // header
        }
        match fields.len() {
            2 => {
                builder.add_positional(&fields[0], &fields[1]);
            }
            n if n >= 3 => {
                let ts: Ts = fields[2].trim().parse().map_err(|_| LogError::Parse {
                    line: i + 1,
                    message: format!("invalid timestamp {:?}", fields[2]),
                })?;
                builder.add(&fields[0], &fields[1], ts);
                for field in &fields[3..] {
                    let (key, value) = field.split_once('=').ok_or_else(|| LogError::Parse {
                        line: i + 1,
                        message: format!("expected key=value attribute, got {field:?}"),
                    })?;
                    let value: i64 = value.trim().parse().map_err(|_| LogError::Parse {
                        line: i + 1,
                        message: format!("invalid attribute value {value:?} for {key:?}"),
                    })?;
                    builder.attr(key.trim(), value);
                }
            }
            n => {
                return Err(LogError::Parse {
                    line: i + 1,
                    message: format!("expected at least 2 fields, got {n}"),
                })
            }
        }
    }
    Ok(())
}

/// Write an event log as CSV (with header), one row per event.
pub fn write_csv<W: Write>(log: &EventLog, mut out: W) -> Result<()> {
    writeln!(out, "trace,activity,timestamp")?;
    for trace in log.traces() {
        let tname = log.trace_name(trace.id()).unwrap_or("?");
        let attrs = log.trace_attrs(trace.id());
        for ev in trace.events() {
            let aname = log.activity_name(ev.activity).unwrap_or("?");
            write!(out, "{},{},{}", quote_csv(tname), quote_csv(aname), ev.ts)?;
            // Attribute entries are keyed by the event's final (unique
            // within the trace) timestamp.
            for (_, key, value) in attrs.iter().filter(|(ts, _, _)| *ts == ev.ts) {
                let kname = log.attr_name(*key).unwrap_or("?");
                write!(out, ",{}={}", quote_csv(kname), value)?;
            }
            writeln!(out)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_simple() {
        let text = "trace,activity,timestamp\nt1,A,1\nt1,B,2\nt2,A,5\n";
        let log = read_csv(Cursor::new(text)).unwrap();
        assert_eq!(log.num_traces(), 2);
        assert_eq!(log.num_events(), 3);
        let mut out = Vec::new();
        write_csv(&log, &mut out).unwrap();
        let log2 = read_csv(Cursor::new(out)).unwrap();
        assert_eq!(log2.num_events(), 3);
        assert_eq!(
            log2.trace_by_name("t1").unwrap().as_pairs(),
            log.trace_by_name("t1").unwrap().as_pairs()
        );
    }

    #[test]
    fn header_is_optional() {
        let log = read_csv(Cursor::new("t1,A,1\nt1,B,2\n")).unwrap();
        assert_eq!(log.num_events(), 2);
    }

    #[test]
    fn positional_rows() {
        let log = read_csv(Cursor::new("t1,A\nt1,B\nt1,A\n")).unwrap();
        let t = log.trace_by_name("t1").unwrap();
        assert_eq!(t.events().iter().map(|e| e.ts).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn quoted_fields() {
        let text = "\"case, 1\",\"say \"\"hi\"\"\",3\n";
        let log = read_csv(Cursor::new(text)).unwrap();
        assert!(log.trace_by_name("case, 1").is_some());
        assert!(log.activity("say \"hi\"").is_some());
        // And the writer quotes them back.
        let mut out = Vec::new();
        write_csv(&log, &mut out).unwrap();
        let log2 = read_csv(Cursor::new(out)).unwrap();
        assert!(log2.trace_by_name("case, 1").is_some());
    }

    #[test]
    fn bad_timestamp_reports_line() {
        let err = read_csv(Cursor::new("t1,A,1\nt1,B,xyz\n")).unwrap_err();
        match err {
            LogError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn wrong_arity_rejected() {
        assert!(read_csv(Cursor::new("justone\n")).is_err());
    }

    #[test]
    fn malformed_attribute_rejected() {
        // No '=' separator.
        assert!(read_csv(Cursor::new("t1,A,1,extra\n")).is_err());
        // Non-integer value.
        assert!(read_csv(Cursor::new("t1,A,1,amount=lots\n")).is_err());
    }

    #[test]
    fn attribute_columns_roundtrip() {
        let text = "t1,A,1,amount=150\nt1,B,2\nt1,C,3,amount=-7,retries=2\n";
        let log = read_csv(Cursor::new(text)).unwrap();
        let t = log.trace_by_name("t1").unwrap().id();
        let amount = log.attr("amount").unwrap();
        let retries = log.attr("retries").unwrap();
        assert_eq!(log.trace_attrs(t), [(1, amount, 150), (3, amount, -7), (3, retries, 2)]);
        let mut out = Vec::new();
        write_csv(&log, &mut out).unwrap();
        let log2 = read_csv(Cursor::new(out)).unwrap();
        assert_eq!(log2.trace_attrs(log2.trace_by_name("t1").unwrap().id()), log.trace_attrs(t));
    }

    #[test]
    fn blank_lines_skipped() {
        let log = read_csv(Cursor::new("t1,A,1\n\n   \nt1,B,2\n")).unwrap();
        assert_eq!(log.num_events(), 2);
    }
}
