//! Descriptive statistics over event logs.
//!
//! Regenerates the quantities reported in Table 4 and Figure 2 of the paper:
//! per-dataset trace counts, distinct-activity counts, and the distributions
//! of events-per-trace and unique-activities-per-trace.

use crate::trace::EventLog;

/// Summary statistics of one event log (one row of the paper's Table 4 plus
/// the per-trace aggregates quoted in §5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct LogStats {
    /// Number of traces (`m`).
    pub num_traces: usize,
    /// Number of distinct activities (`l`).
    pub num_activities: usize,
    /// Total number of events (`|E|`).
    pub num_events: usize,
    /// Minimum events per trace.
    pub min_trace_len: usize,
    /// Maximum events per trace (`n`).
    pub max_trace_len: usize,
    /// Mean events per trace.
    pub mean_trace_len: f64,
    /// Minimum distinct activities per trace.
    pub min_trace_activities: usize,
    /// Maximum distinct activities per trace.
    pub max_trace_activities: usize,
    /// Mean distinct activities per trace.
    pub mean_trace_activities: f64,
}

impl LogStats {
    /// Compute statistics for `log`.
    pub fn of(log: &EventLog) -> Self {
        let lens: Vec<usize> = log.traces().map(|t| t.len()).collect();
        let acts: Vec<usize> = log.traces().map(|t| t.distinct_activities()).collect();
        let num_events: usize = lens.iter().sum();
        let m = lens.len();
        let mean = |v: &[usize]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<usize>() as f64 / v.len() as f64
            }
        };
        Self {
            num_traces: m,
            num_activities: log.num_activities(),
            num_events,
            min_trace_len: lens.iter().copied().min().unwrap_or(0),
            max_trace_len: lens.iter().copied().max().unwrap_or(0),
            mean_trace_len: mean(&lens),
            min_trace_activities: acts.iter().copied().min().unwrap_or(0),
            max_trace_activities: acts.iter().copied().max().unwrap_or(0),
            mean_trace_activities: mean(&acts),
        }
    }
}

/// A fixed-bin histogram over per-trace values; used to render the Figure 2
/// distributions as text.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower edge of each bin.
    pub edges: Vec<usize>,
    /// Count of traces falling in each bin.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Histogram of `values` using `bins` equal-width bins over the data
    /// range. An empty input yields an empty histogram.
    pub fn build(values: &[usize], bins: usize) -> Self {
        if values.is_empty() || bins == 0 {
            return Self { edges: Vec::new(), counts: Vec::new() };
        }
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        let width = ((hi - lo) / bins).max(1) + 1;
        let nbins = (hi - lo) / width + 1;
        let mut counts = vec![0usize; nbins];
        for &v in values {
            counts[(v - lo) / width] += 1;
        }
        let edges = (0..nbins).map(|i| lo + i * width).collect();
        Self { edges, counts }
    }

    /// Total count across bins.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Render as `edge: count` lines with a proportional bar, matching the
    /// role of the Figure 2 plots.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (e, c) in self.edges.iter().zip(&self.counts) {
            let bar = "#".repeat(c * width / max);
            out.push_str(&format!("{e:>8} | {bar} {c}\n"));
        }
        out
    }
}

/// Distribution of events-per-trace (left column of Figure 2).
pub fn events_per_trace(log: &EventLog) -> Vec<usize> {
    log.traces().map(|t| t.len()).collect()
}

/// Distribution of unique-activities-per-trace (right column of Figure 2).
pub fn activities_per_trace(log: &EventLog) -> Vec<usize> {
    log.traces().map(|t| t.distinct_activities()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EventLogBuilder;

    fn sample_log() -> EventLog {
        let mut b = EventLogBuilder::new();
        // t1: A B A (3 events, 2 distinct), t2: C (1 event, 1 distinct)
        b.add("t1", "A", 1).add("t1", "B", 2).add("t1", "A", 3).add("t2", "C", 1);
        b.build()
    }

    #[test]
    fn stats_basic() {
        let s = LogStats::of(&sample_log());
        assert_eq!(s.num_traces, 2);
        assert_eq!(s.num_activities, 3);
        assert_eq!(s.num_events, 4);
        assert_eq!(s.min_trace_len, 1);
        assert_eq!(s.max_trace_len, 3);
        assert!((s.mean_trace_len - 2.0).abs() < 1e-9);
        assert_eq!(s.min_trace_activities, 1);
        assert_eq!(s.max_trace_activities, 2);
    }

    #[test]
    fn stats_empty_log() {
        let s = LogStats::of(&EventLog::new());
        assert_eq!(s.num_traces, 0);
        assert_eq!(s.num_events, 0);
        assert_eq!(s.mean_trace_len, 0.0);
    }

    #[test]
    fn distributions() {
        let log = sample_log();
        assert_eq!(events_per_trace(&log), vec![3, 1]);
        assert_eq!(activities_per_trace(&log), vec![2, 1]);
    }

    #[test]
    fn histogram_covers_all_values() {
        let values = vec![1, 2, 2, 3, 10, 10, 10];
        let h = Histogram::build(&values, 3);
        assert_eq!(h.total(), values.len());
        // All bins start at or after the min and the render mentions counts.
        assert!(h.edges[0] == 1);
        let text = h.render(20);
        assert!(text.contains('#'));
    }

    #[test]
    fn histogram_degenerate_inputs() {
        assert!(Histogram::build(&[], 5).counts.is_empty());
        assert!(Histogram::build(&[7], 0).counts.is_empty());
        let h = Histogram::build(&[5, 5, 5], 4);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts.len(), 1);
    }
}
