//! Query patterns: sequences of activities `⟨ev1, ev2, …, evp⟩`.

use crate::intern::{Activity, ActivityInterner};
use crate::trace::EventLog;

/// A sequential pattern: the input of every query type in the paper
/// (statistics, pattern detection, pattern continuation).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    activities: Vec<Activity>,
}

impl Pattern {
    /// Build from interned activities.
    pub fn new(activities: Vec<Activity>) -> Self {
        Self { activities }
    }

    /// Build from names against an existing catalog. Returns `None` if any
    /// name is unknown (such a pattern trivially has no completions, and
    /// callers usually want to know that before paying for a query).
    pub fn from_names(interner: &ActivityInterner, names: &[&str]) -> Option<Self> {
        names.iter().map(|n| interner.get(n)).collect::<Option<Vec<_>>>().map(Self::new)
    }

    /// Build from names against a log's catalog.
    pub fn from_log(log: &EventLog, names: &[&str]) -> Option<Self> {
        Self::from_names(log.activities(), names)
    }

    /// Pattern length `p`.
    #[inline]
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// True for the empty pattern.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }

    /// The activities in order.
    #[inline]
    pub fn activities(&self) -> &[Activity] {
        &self.activities
    }

    /// Activity at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Option<Activity> {
        self.activities.get(i).copied()
    }

    /// Last activity (`ev_p`), the anchor of continuation queries.
    pub fn last(&self) -> Option<Activity> {
        self.activities.last().copied()
    }

    /// Consecutive activity pairs `(ev_i, ev_{i+1})` — the units the
    /// inverted index is keyed by.
    pub fn consecutive_pairs(&self) -> impl Iterator<Item = (Activity, Activity)> + '_ {
        self.activities.windows(2).map(|w| (w[0], w[1]))
    }

    /// A new pattern with `a` appended (pattern-continuation candidate).
    pub fn extended(&self, a: Activity) -> Pattern {
        let mut acts = self.activities.clone();
        acts.push(a);
        Pattern::new(acts)
    }

    /// A new pattern with `a` inserted at `pos` (the paper's §7 extension:
    /// continuation "at arbitrary places in the query pattern").
    pub fn inserted(&self, pos: usize, a: Activity) -> Pattern {
        let mut acts = self.activities.clone();
        acts.insert(pos.min(acts.len()), a);
        Pattern::new(acts)
    }

    /// Render with a name catalog, e.g. `⟨submit, approve, pay⟩`.
    pub fn display(&self, interner: &ActivityInterner) -> String {
        let names: Vec<&str> =
            self.activities.iter().map(|&a| interner.name(a).unwrap_or("?")).collect();
        format!("⟨{}⟩", names.join(", "))
    }
}

impl From<Vec<Activity>> for Pattern {
    fn from(v: Vec<Activity>) -> Self {
        Pattern::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> ActivityInterner {
        let mut it = ActivityInterner::new();
        for n in ["A", "B", "C"] {
            it.intern(n);
        }
        it
    }

    #[test]
    fn from_names_resolves_or_fails() {
        let cat = catalog();
        let p = Pattern::from_names(&cat, &["A", "C", "A"]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.get(1), cat.get("C"));
        assert!(Pattern::from_names(&cat, &["A", "Z"]).is_none());
    }

    #[test]
    fn consecutive_pairs_windows() {
        let cat = catalog();
        let p = Pattern::from_names(&cat, &["A", "B", "C"]).unwrap();
        let pairs: Vec<_> = p.consecutive_pairs().collect();
        let (a, b, c) = (cat.get("A").unwrap(), cat.get("B").unwrap(), cat.get("C").unwrap());
        assert_eq!(pairs, vec![(a, b), (b, c)]);
        let single = Pattern::new(vec![a]);
        assert_eq!(single.consecutive_pairs().count(), 0);
    }

    #[test]
    fn extended_and_inserted() {
        let cat = catalog();
        let (a, b, c) = (cat.get("A").unwrap(), cat.get("B").unwrap(), cat.get("C").unwrap());
        let p = Pattern::new(vec![a, b]);
        assert_eq!(p.extended(c).activities(), &[a, b, c]);
        assert_eq!(p.inserted(0, c).activities(), &[c, a, b]);
        assert_eq!(p.inserted(1, c).activities(), &[a, c, b]);
        assert_eq!(p.inserted(99, c).activities(), &[a, b, c]);
        // original untouched
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn display_uses_names() {
        let cat = catalog();
        let p = Pattern::from_names(&cat, &["B", "A"]).unwrap();
        assert_eq!(p.display(&cat), "⟨B, A⟩");
    }

    #[test]
    fn last_and_empty() {
        let cat = catalog();
        let p = Pattern::from_names(&cat, &["B"]).unwrap();
        assert_eq!(p.last(), cat.get("B"));
        let e = Pattern::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.last(), None);
    }
}
