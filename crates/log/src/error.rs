//! Error type shared by the log-model crate.

use std::fmt;

/// Errors produced while building, parsing or writing event logs.
#[derive(Debug)]
pub enum LogError {
    /// An event violated the strict total order of its trace
    /// (its timestamp was not greater than the previous event's).
    OutOfOrder {
        /// Trace the offending event belongs to.
        trace: String,
        /// Timestamp of the previous event in the trace.
        previous: u64,
        /// Timestamp of the offending event.
        current: u64,
    },
    /// A line or element of an input file could not be parsed.
    Parse {
        /// 1-based line number (0 when unknown, e.g. streaming XML).
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An activity id was used that the interner has never issued.
    UnknownActivity(u32),
    /// A rich pattern violated a structural rule (empty, negated boundary
    /// element, negated Kleene, ...).
    InvalidPattern(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::OutOfOrder { trace, previous, current } => {
                write!(f, "event out of order in trace {trace}: ts {current} after ts {previous}")
            }
            LogError::Parse { line, message } => {
                if *line == 0 {
                    write!(f, "parse error: {message}")
                } else {
                    write!(f, "parse error at line {line}: {message}")
                }
            }
            LogError::UnknownActivity(id) => write!(f, "unknown activity id {id}"),
            LogError::InvalidPattern(msg) => write!(f, "invalid pattern: {msg}"),
            LogError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_order() {
        let e = LogError::OutOfOrder { trace: "t1".into(), previous: 5, current: 3 };
        assert_eq!(e.to_string(), "event out of order in trace t1: ts 3 after ts 5");
    }

    #[test]
    fn display_parse_with_and_without_line() {
        let e = LogError::Parse { line: 7, message: "bad field".into() };
        assert!(e.to_string().contains("line 7"));
        let e = LogError::Parse { line: 0, message: "bad field".into() };
        assert!(!e.to_string().contains("line"));
    }

    #[test]
    fn io_error_preserves_source() {
        use std::error::Error;
        let e = LogError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn display_unknown_activity() {
        assert_eq!(LogError::UnknownActivity(42).to_string(), "unknown activity id 42");
    }
}
