//! Events, traces (cases) and event logs.
//!
//! A [`Trace`] is the paper's *case*: the sequence of all events of one
//! logical execution unit, strictly ordered by timestamp. An [`EventLog`]
//! is a set of traces together with the activity/trace-name catalogs.
//!
//! The per-case ordering is *strict* (Definition 2.1 requires a strict total
//! order `≤` per case, and the pattern-detection join of Algorithm 2 matches
//! events by timestamp equality, which is only unambiguous when timestamps
//! are unique within a trace). Builders therefore enforce strictly
//! increasing timestamps; the batch-oriented [`EventLogBuilder`] resolves
//! ties deterministically by bumping the later event forward.

use crate::error::LogError;
use crate::intern::{Activity, ActivityInterner, Attr, AttrInterner};
use crate::Result;
use std::collections::HashMap;

/// One event-attribute value inside a trace: the attribute `attr` of the
/// event at timestamp `ts` has integer value `value`. Timestamps are unique
/// within a trace (strict order), so `(ts, attr)` identifies the value.
pub type AttrEntry = (Ts, Attr, i64);

/// Timestamp type. Either a real epoch-based stamp or, per the paper, the
/// position of the event in its trace when no timestamp is recorded.
pub type Ts = u64;

/// Dense identifier of a trace within one [`EventLog`] (and within the
/// indexer catalog built on top of it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u32);

impl TraceId {
    /// Raw id as `usize` for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A single timestamped event instance: an activity occurrence inside a
/// trace. 8 + 4 bytes; traces store events contiguously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// The event type (the paper's `δ(ev)`).
    pub activity: Activity,
    /// The timestamp (the paper's `ev.ts`).
    pub ts: Ts,
}

impl Event {
    /// Convenience constructor.
    #[inline]
    pub fn new(activity: Activity, ts: Ts) -> Self {
        Self { activity, ts }
    }
}

/// A case/trace/session: the strictly-ordered event sequence of one logical
/// execution unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    id: TraceId,
    events: Vec<Event>,
}

impl Trace {
    /// Build a trace from pre-validated events.
    ///
    /// Returns an error if timestamps are not strictly increasing.
    pub fn new(id: TraceId, events: Vec<Event>) -> Result<Self> {
        for w in events.windows(2) {
            if w[1].ts <= w[0].ts {
                return Err(LogError::OutOfOrder {
                    trace: id.to_string(),
                    previous: w[0].ts,
                    current: w[1].ts,
                });
            }
        }
        Ok(Self { id, events })
    }

    /// The trace id.
    #[inline]
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// The ordered events.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events in the trace.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True for an empty trace.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamp of the last event, if any.
    pub fn last_ts(&self) -> Option<Ts> {
        self.events.last().map(|e| e.ts)
    }

    /// Number of *distinct* activities appearing in the trace.
    pub fn distinct_activities(&self) -> usize {
        let mut acts: Vec<u32> = self.events.iter().map(|e| e.activity.0).collect();
        acts.sort_unstable();
        acts.dedup();
        acts.len()
    }

    /// Events as `(activity, ts)` pairs — handy in tests.
    pub fn as_pairs(&self) -> Vec<(Activity, Ts)> {
        self.events.iter().map(|e| (e.activity, e.ts)).collect()
    }

    /// Append further events (used when a batch extends an open trace).
    /// The first new event must be later than the current last event.
    pub fn extend(&mut self, more: &[Event]) -> Result<()> {
        for &e in more {
            if let Some(last) = self.events.last() {
                if e.ts <= last.ts {
                    return Err(LogError::OutOfOrder {
                        trace: self.id.to_string(),
                        previous: last.ts,
                        current: e.ts,
                    });
                }
            }
            self.events.push(e);
        }
        Ok(())
    }
}

/// Incremental builder for a single [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    id: TraceId,
    events: Vec<Event>,
}

impl TraceBuilder {
    /// Start a new trace with the given id.
    pub fn new(id: TraceId) -> Self {
        Self { id, events: Vec::new() }
    }

    /// Append an event with an explicit timestamp; must be strictly greater
    /// than the previous timestamp.
    pub fn append(&mut self, activity: Activity, ts: Ts) -> Result<&mut Self> {
        if let Some(last) = self.events.last() {
            if ts <= last.ts {
                return Err(LogError::OutOfOrder {
                    trace: self.id.to_string(),
                    previous: last.ts,
                    current: ts,
                });
            }
        }
        self.events.push(Event::new(activity, ts));
        Ok(self)
    }

    /// Append an event without a timestamp: its 1-based position in the
    /// trace is used instead (paper §3.1.1, final note).
    pub fn append_next(&mut self, activity: Activity) -> &mut Self {
        let ts = self.events.last().map_or(1, |e| e.ts + 1);
        self.events.push(Event::new(activity, ts));
        self
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finish the trace.
    pub fn build(self) -> Trace {
        // Ordering was enforced on every append.
        Trace { id: self.id, events: self.events }
    }
}

/// An event log: the activity catalog, the trace-name catalog and the traces
/// themselves. `traces[i].id() == TraceId(i)` always holds.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    activities: ActivityInterner,
    attr_names: AttrInterner,
    trace_names: Vec<String>,
    traces: Vec<Trace>,
    // Parallel to `traces`: per-trace attribute values sorted by ts. Most
    // logs carry no attributes, so this is a Vec-of-empty-Vecs in the
    // common case rather than a field on the 12-byte `Event`.
    trace_attrs: Vec<Vec<AttrEntry>>,
    by_name: HashMap<String, TraceId>,
}

impl EventLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The activity catalog.
    #[inline]
    pub fn activities(&self) -> &ActivityInterner {
        &self.activities
    }

    /// Number of traces (the paper's `m = |C|`).
    #[inline]
    pub fn num_traces(&self) -> usize {
        self.traces.len()
    }

    /// Number of distinct activities (the paper's `l = |A|`).
    #[inline]
    pub fn num_activities(&self) -> usize {
        self.activities.len()
    }

    /// Total number of events across all traces (the paper's `|E|`).
    pub fn num_events(&self) -> usize {
        self.traces.iter().map(Trace::len).sum()
    }

    /// Maximum trace length (the paper's `n`).
    pub fn max_trace_len(&self) -> usize {
        self.traces.iter().map(Trace::len).max().unwrap_or(0)
    }

    /// Look up a trace by id.
    pub fn trace(&self, id: TraceId) -> Option<&Trace> {
        self.traces.get(id.index())
    }

    /// Look up a trace by its external (string) name.
    pub fn trace_by_name(&self, name: &str) -> Option<&Trace> {
        self.by_name.get(name).and_then(|&id| self.trace(id))
    }

    /// External name of a trace id.
    pub fn trace_name(&self, id: TraceId) -> Option<&str> {
        self.trace_names.get(id.index()).map(String::as_str)
    }

    /// Iterate over all traces in id order.
    pub fn traces(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter()
    }

    /// Resolve an activity name (without interning).
    pub fn activity(&self, name: &str) -> Option<Activity> {
        self.activities.get(name)
    }

    /// Resolve an activity id back to its name.
    pub fn activity_name(&self, a: Activity) -> Option<&str> {
        self.activities.name(a)
    }

    /// The attribute-key catalog.
    #[inline]
    pub fn attr_names(&self) -> &AttrInterner {
        &self.attr_names
    }

    /// Resolve an attribute-key name (without interning).
    pub fn attr(&self, name: &str) -> Option<Attr> {
        self.attr_names.get(name)
    }

    /// Resolve an attribute-key id back to its name.
    pub fn attr_name(&self, a: Attr) -> Option<&str> {
        self.attr_names.name(a)
    }

    /// Attribute values of a trace, sorted by event timestamp. Empty for
    /// unknown trace ids and for traces without attributes.
    pub fn trace_attrs(&self, id: TraceId) -> &[AttrEntry] {
        self.trace_attrs.get(id.index()).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Builder that accepts raw `(trace name, activity name, timestamp)` records
/// in any order and assembles a well-formed [`EventLog`].
///
/// Records within a trace are sorted by timestamp (stable, so equal stamps
/// keep arrival order) and ties are resolved by bumping the later event by
/// the minimal amount that restores strictness. Records without timestamps
/// receive their per-trace arrival position.
#[derive(Debug, Default)]
pub struct EventLogBuilder {
    activities: ActivityInterner,
    attr_names: AttrInterner,
    trace_names: Vec<String>,
    by_name: HashMap<String, TraceId>,
    // (arrival order kept per trace)
    pending: Vec<Vec<PendingEvent>>,
    // Trace slot of the most recently added event; `attr()` attaches there.
    last_slot: Option<usize>,
}

/// One raw record awaiting assembly: activity, optional explicit timestamp,
/// and any attributes attached via [`EventLogBuilder::attr`].
#[derive(Debug, Clone)]
struct PendingEvent {
    activity: Activity,
    ts: Option<Ts>,
    attrs: Vec<(Attr, i64)>,
}

impl EventLogBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seed the builder with an existing activity catalog so that ids stay
    /// compatible across batches.
    pub fn with_activities(activities: ActivityInterner) -> Self {
        Self { activities, ..Self::default() }
    }

    fn trace_slot(&mut self, trace: &str) -> usize {
        if let Some(&id) = self.by_name.get(trace) {
            return id.index();
        }
        let id = TraceId(self.trace_names.len() as u32);
        self.trace_names.push(trace.to_owned());
        self.by_name.insert(trace.to_owned(), id);
        self.pending.push(Vec::new());
        id.index()
    }

    /// Add one event with an explicit timestamp.
    pub fn add(&mut self, trace: &str, activity: &str, ts: Ts) -> &mut Self {
        let a = self.activities.intern(activity);
        let slot = self.trace_slot(trace);
        self.pending[slot].push(PendingEvent { activity: a, ts: Some(ts), attrs: Vec::new() });
        self.last_slot = Some(slot);
        self
    }

    /// Add one event without a timestamp; its per-trace position is used.
    pub fn add_positional(&mut self, trace: &str, activity: &str) -> &mut Self {
        let a = self.activities.intern(activity);
        let slot = self.trace_slot(trace);
        self.pending[slot].push(PendingEvent { activity: a, ts: None, attrs: Vec::new() });
        self.last_slot = Some(slot);
        self
    }

    /// Attach an integer attribute to the most recently added event
    /// (chain after `add`/`add_positional`). Setting the same key twice on
    /// one event overwrites the earlier value. A no-op before the first
    /// event is added.
    pub fn attr(&mut self, key: &str, value: i64) -> &mut Self {
        let a = self.attr_names.intern(key);
        if let Some(ev) = self
            .last_slot
            .and_then(|slot| self.pending.get_mut(slot))
            .and_then(|evs| evs.last_mut())
        {
            match ev.attrs.iter_mut().find(|(k, _)| *k == a) {
                Some(entry) => entry.1 = value,
                None => ev.attrs.push((a, value)),
            }
        }
        self
    }

    /// Number of events added so far.
    pub fn num_events(&self) -> usize {
        self.pending.iter().map(Vec::len).sum()
    }

    /// Assemble the final log.
    pub fn build(self) -> EventLog {
        let mut traces = Vec::with_capacity(self.pending.len());
        let mut trace_attrs = Vec::with_capacity(self.pending.len());
        for (i, pend) in self.pending.into_iter().enumerate() {
            let id = TraceId(i as u32);
            // Assign positional stamps, then stable-sort by ts. Attributes
            // ride alongside their event through sort/dedup/bump so they end
            // up keyed by the event's *final* timestamp.
            let mut evs: Vec<(Event, Vec<(Attr, i64)>)> = pend
                .into_iter()
                .enumerate()
                .map(|(pos, p)| (Event::new(p.activity, p.ts.unwrap_or(pos as Ts + 1)), p.attrs))
                .collect();
            evs.sort_by_key(|(e, _)| e.ts);
            // An identical (activity, ts) record is a resend — drop it.
            // (Log shippers re-deliver; §3.1.3's LastChecked guard handles
            // cross-batch resends, this handles within-batch ones.) Resends
            // may be interleaved with other same-ts events, so dedup within
            // each equal-ts run, keeping first-arrival order. The first
            // arrival's attributes win; a resend's attrs are dropped with it.
            {
                let mut kept: Vec<(Event, Vec<(Attr, i64)>)> = Vec::with_capacity(evs.len());
                let mut run_start = 0;
                for (ev, attrs) in evs.drain(..) {
                    if kept.last().is_some_and(|(last, _)| last.ts != ev.ts) {
                        run_start = kept.len();
                    }
                    if !kept[run_start..].iter().any(|(k, _)| *k == ev) {
                        kept.push((ev, attrs));
                    }
                }
                evs = kept;
            }
            // Bump remaining (genuinely different) ties minimally to
            // restore strictness.
            for j in 1..evs.len() {
                if evs[j].0.ts <= evs[j - 1].0.ts {
                    evs[j].0.ts = evs[j - 1].0.ts + 1;
                }
            }
            let mut attrs_out: Vec<AttrEntry> = Vec::new();
            let events: Vec<Event> = evs
                .into_iter()
                .map(|(e, attrs)| {
                    attrs_out.extend(attrs.into_iter().map(|(k, v)| (e.ts, k, v)));
                    e
                })
                .collect();
            traces.push(Trace { id, events });
            trace_attrs.push(attrs_out);
        }
        EventLog {
            activities: self.activities,
            attr_names: self.attr_names,
            trace_names: self.trace_names,
            by_name: self.by_name,
            traces,
            trace_attrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(i: u32) -> Activity {
        Activity(i)
    }

    #[test]
    fn trace_rejects_non_increasing() {
        let evs = vec![Event::new(act(0), 1), Event::new(act(1), 1)];
        assert!(Trace::new(TraceId(0), evs).is_err());
        let evs = vec![Event::new(act(0), 2), Event::new(act(1), 1)];
        assert!(Trace::new(TraceId(0), evs).is_err());
    }

    #[test]
    fn trace_accepts_strictly_increasing() {
        let evs = vec![Event::new(act(0), 1), Event::new(act(1), 5), Event::new(act(0), 6)];
        let t = Trace::new(TraceId(3), evs).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.id(), TraceId(3));
        assert_eq!(t.last_ts(), Some(6));
        assert_eq!(t.distinct_activities(), 2);
    }

    #[test]
    fn builder_positional_timestamps_start_at_one() {
        let mut b = TraceBuilder::new(TraceId(0));
        b.append_next(act(0)).append_next(act(1)).append_next(act(0));
        let t = b.build();
        assert_eq!(t.as_pairs(), vec![(act(0), 1), (act(1), 2), (act(0), 3)]);
    }

    #[test]
    fn builder_mixed_append_enforces_order() {
        let mut b = TraceBuilder::new(TraceId(0));
        b.append(act(0), 10).unwrap();
        assert!(b.append(act(1), 10).is_err());
        assert!(b.append(act(1), 9).is_err());
        b.append(act(1), 11).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn trace_extend_appends_and_validates() {
        let mut t = Trace::new(TraceId(0), vec![Event::new(act(0), 1)]).unwrap();
        t.extend(&[Event::new(act(1), 2), Event::new(act(0), 3)]).unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.extend(&[Event::new(act(1), 3)]).is_err());
    }

    #[test]
    fn log_builder_groups_sorts_and_bumps_ties() {
        let mut b = EventLogBuilder::new();
        b.add("t1", "B", 5).add("t1", "A", 1).add("t2", "A", 7).add("t1", "C", 5);
        let log = b.build();
        assert_eq!(log.num_traces(), 2);
        assert_eq!(log.num_activities(), 3);
        assert_eq!(log.num_events(), 3 + 1);
        let t1 = log.trace_by_name("t1").unwrap();
        // A@1, then B@5 and C@5 -> C bumped to 6, arrival order kept.
        let names: Vec<&str> =
            t1.events().iter().map(|e| log.activity_name(e.activity).unwrap()).collect();
        assert_eq!(names, ["A", "B", "C"]);
        assert_eq!(t1.events()[2].ts, 6);
    }

    #[test]
    fn log_builder_drops_exact_resends_but_bumps_distinct_ties() {
        let mut b = EventLogBuilder::new();
        // (A,5) resent twice — once interleaved with a distinct (B,5) tie.
        b.add("t", "A", 5).add("t", "B", 5).add("t", "A", 5).add("t", "A", 5);
        let log = b.build();
        let t = log.trace_by_name("t").unwrap();
        let rendered: Vec<(&str, Ts)> =
            t.events().iter().map(|e| (log.activity_name(e.activity).unwrap(), e.ts)).collect();
        // Resends dropped; the genuine B tie is bumped past A.
        assert_eq!(rendered, [("A", 5), ("B", 6)]);
    }

    #[test]
    fn log_builder_positional() {
        let mut b = EventLogBuilder::new();
        b.add_positional("t", "A").add_positional("t", "B").add_positional("t", "A");
        let log = b.build();
        let t = log.trace_by_name("t").unwrap();
        assert_eq!(t.events().iter().map(|e| e.ts).collect::<Vec<_>>(), [1, 2, 3]);
    }

    #[test]
    fn log_metadata_accessors() {
        let mut b = EventLogBuilder::new();
        b.add("x", "A", 1).add("x", "B", 2).add("y", "A", 1);
        let log = b.build();
        assert_eq!(log.max_trace_len(), 2);
        assert_eq!(log.trace_name(TraceId(0)), Some("x"));
        assert_eq!(log.trace_name(TraceId(1)), Some("y"));
        assert_eq!(log.trace_name(TraceId(2)), None);
        let a = log.activity("A").unwrap();
        assert_eq!(log.activity_name(a), Some("A"));
        assert!(log.activity("Z").is_none());
        assert_eq!(log.traces().count(), 2);
        assert_eq!(log.trace(TraceId(1)).unwrap().id(), TraceId(1));
    }

    #[test]
    fn builder_attrs_follow_events_through_sort_and_bump() {
        let mut b = EventLogBuilder::new();
        // Out-of-order arrival; B@5 and C@5 tie, so C is bumped to 6.
        b.add("t", "B", 5).attr("amount", 10);
        b.add("t", "A", 1).attr("amount", 1).attr("region", 7);
        b.add("t", "C", 5).attr("amount", 30);
        let log = b.build();
        let t = log.trace_by_name("t").unwrap();
        let amount = log.attr("amount").unwrap();
        let region = log.attr("region").unwrap();
        assert_eq!(
            log.trace_attrs(t.id()),
            [(1, amount, 1), (1, region, 7), (5, amount, 10), (6, amount, 30)]
        );
        // Unknown trace ids have no attrs.
        assert!(log.trace_attrs(TraceId(99)).is_empty());
        assert_eq!(log.attr_name(amount), Some("amount"));
        assert!(log.attr("missing").is_none());
    }

    #[test]
    fn builder_attr_overwrites_same_key_and_resends_keep_first_attrs() {
        let mut b = EventLogBuilder::new();
        // attr() before any event is a documented no-op.
        b.attr("orphan", 1);
        b.add("t", "A", 5).attr("x", 1).attr("x", 2);
        // Exact resend of (A,5): dropped, first arrival's attrs win.
        b.add("t", "A", 5).attr("x", 99);
        let log = b.build();
        let t = log.trace_by_name("t").unwrap();
        assert_eq!(t.len(), 1);
        let x = log.attr("x").unwrap();
        assert_eq!(log.trace_attrs(t.id()), [(5, x, 2)]);
    }

    #[test]
    fn with_activities_preserves_catalog_ids() {
        let mut cat = ActivityInterner::new();
        let a0 = cat.intern("A");
        let mut b = EventLogBuilder::with_activities(cat);
        b.add("t", "B", 1).add("t", "A", 2);
        let log = b.build();
        assert_eq!(log.activity("A"), Some(a0));
        assert_eq!(log.activity("B"), Some(Activity(1)));
    }
}
