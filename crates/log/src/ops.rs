//! Log manipulation utilities: filtering, time-slicing and batching.
//!
//! The paper's operational story is *periodic* indexing: "new log events
//! are batched and the update procedure is called periodically" (§3.1.3).
//! [`split_by_period`] turns a historical log into exactly those batches so
//! the incremental path can be exercised (and tested) against real
//! workloads; the filters support the usual pre-processing hygiene steps
//! (dropping activities, restricting to a time window) that process-mining
//! pipelines apply before indexing.

use crate::intern::Activity;
use crate::trace::{EventLog, EventLogBuilder, Ts};
use std::ops::Range;

/// Keep only events whose activity satisfies `keep`. Traces left empty are
/// dropped entirely. Activity ids are re-interned, so the result's catalog
/// contains only surviving activities.
pub fn filter_by_activities(log: &EventLog, keep: impl Fn(Activity) -> bool) -> EventLog {
    rebuild(log, |_trace, _ts, activity| keep(activity))
}

/// Keep only events with `ts` in `range`. Traces left empty are dropped.
pub fn slice_by_time(log: &EventLog, range: Range<Ts>) -> EventLog {
    rebuild(log, |_trace, ts, _activity| range.contains(&ts))
}

fn rebuild(log: &EventLog, keep: impl Fn(&str, Ts, Activity) -> bool) -> EventLog {
    let mut b = EventLogBuilder::new();
    for trace in log.traces() {
        let name = log.trace_name(trace.id()).expect("trace has a name");
        for ev in trace.events() {
            if keep(name, ev.ts, ev.activity) {
                let act = log.activity_name(ev.activity).expect("activity has a name");
                b.add(name, act, ev.ts);
            }
        }
    }
    b.build()
}

/// Split a log into consecutive time-period batches of width `period`:
/// batch `k` holds every event with `ts ∈ [min_ts + k·period, min_ts +
/// (k+1)·period)`. Feeding the batches to `Indexer::index_log` in order
/// reproduces the paper's periodic-update regime exactly (traces spanning
/// periods are extended across batches). Empty input yields no batches.
pub fn split_by_period(log: &EventLog, period: Ts) -> Vec<EventLog> {
    assert!(period > 0, "period must be positive");
    let min_ts = log.traces().filter_map(|t| t.events().first()).map(|e| e.ts).min();
    let max_ts = log.traces().filter_map(|t| t.events().last()).map(|e| e.ts).max();
    let (Some(lo), Some(hi)) = (min_ts, max_ts) else { return Vec::new() };
    let num_batches = ((hi - lo) / period + 1) as usize;
    let mut builders: Vec<EventLogBuilder> =
        (0..num_batches).map(|_| EventLogBuilder::new()).collect();
    for trace in log.traces() {
        let name = log.trace_name(trace.id()).expect("trace has a name");
        for ev in trace.events() {
            let k = ((ev.ts - lo) / period) as usize;
            let act = log.activity_name(ev.activity).expect("activity has a name");
            builders[k].add(name, act, ev.ts);
        }
    }
    builders.into_iter().map(EventLogBuilder::build).collect()
}

/// Merge several logs into one. Events of traces sharing a name are
/// combined (and re-sorted by timestamp by the builder); activity ids are
/// re-interned.
pub fn merge(logs: &[&EventLog]) -> EventLog {
    let mut b = EventLogBuilder::new();
    for log in logs {
        for trace in log.traces() {
            let name = log.trace_name(trace.id()).expect("trace has a name");
            for ev in trace.events() {
                let act = log.activity_name(ev.activity).expect("activity has a name");
                b.add(name, act, ev.ts);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventLog {
        let mut b = EventLogBuilder::new();
        b.add("t1", "A", 1).add("t1", "B", 5).add("t1", "A", 12);
        b.add("t2", "C", 3).add("t2", "B", 14);
        b.build()
    }

    #[test]
    fn filter_drops_activities_and_empty_traces() {
        let log = sample();
        let b = log.activity("B").unwrap();
        let only_b = filter_by_activities(&log, |a| a == b);
        assert_eq!(only_b.num_traces(), 2);
        assert_eq!(only_b.num_events(), 2);
        assert_eq!(only_b.num_activities(), 1);
        let c = log.activity("C").unwrap();
        let only_c = filter_by_activities(&log, |a| a == c);
        assert_eq!(only_c.num_traces(), 1); // t1 vanished entirely
    }

    #[test]
    fn time_slice_keeps_half_open_range() {
        let log = sample();
        let s = slice_by_time(&log, 3..12);
        assert_eq!(s.num_events(), 2); // B@5 and C@3; A@12 excluded
        assert!(s.trace_by_name("t1").is_some());
        assert!(slice_by_time(&log, 100..200).num_traces() == 0);
    }

    #[test]
    fn split_by_period_partitions_all_events() {
        let log = sample();
        let batches = split_by_period(&log, 5);
        // ts range 1..=14 → periods [1,6), [6,11), [11,16) → 3 batches.
        assert_eq!(batches.len(), 3);
        let total: usize = batches.iter().map(EventLog::num_events).sum();
        assert_eq!(total, log.num_events());
        // Batch 0 holds ts 1,3,5; batch 1 empty; batch 2 holds 12,14.
        assert_eq!(batches[0].num_events(), 3);
        assert_eq!(batches[1].num_events(), 0);
        assert_eq!(batches[2].num_events(), 2);
    }

    #[test]
    fn split_empty_log_is_empty() {
        assert!(split_by_period(&EventLog::new(), 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        split_by_period(&sample(), 0);
    }

    #[test]
    fn merge_reassembles_split_batches() {
        let log = sample();
        let batches = split_by_period(&log, 5);
        let refs: Vec<&EventLog> = batches.iter().collect();
        let merged = merge(&refs);
        assert_eq!(merged.num_events(), log.num_events());
        assert_eq!(merged.num_traces(), log.num_traces());
        // Per-trace sequences identical after the round trip.
        for trace in log.traces() {
            let name = log.trace_name(trace.id()).unwrap();
            let orig: Vec<(String, Ts)> = trace
                .events()
                .iter()
                .map(|e| (log.activity_name(e.activity).unwrap().to_owned(), e.ts))
                .collect();
            let round: Vec<(String, Ts)> = merged
                .trace_by_name(name)
                .unwrap()
                .events()
                .iter()
                .map(|e| (merged.activity_name(e.activity).unwrap().to_owned(), e.ts))
                .collect();
            assert_eq!(orig, round, "trace {name}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_log() -> impl Strategy<Value = EventLog> {
            prop::collection::vec(prop::collection::vec(0u32..4, 1..20), 1..8).prop_map(|traces| {
                let mut b = EventLogBuilder::new();
                for (t, acts) in traces.iter().enumerate() {
                    for (i, a) in acts.iter().enumerate() {
                        b.add(&format!("t{t}"), &format!("a{a}"), (i * 3 + 1) as Ts);
                    }
                }
                b.build()
            })
        }

        proptest! {
            #[test]
            fn split_then_merge_is_identity(log in arb_log(), period in 1u64..10) {
                let batches = split_by_period(&log, period);
                let refs: Vec<&EventLog> = batches.iter().collect();
                let merged = merge(&refs);
                prop_assert_eq!(merged.num_events(), log.num_events());
                prop_assert_eq!(merged.num_traces(), log.num_traces());
            }

            #[test]
            fn batches_respect_period_boundaries(log in arb_log(), period in 1u64..10) {
                let lo = log.traces().filter_map(|t| t.events().first()).map(|e| e.ts).min();
                let Some(lo) = lo else { return Ok(()) };
                for (k, batch) in split_by_period(&log, period).iter().enumerate() {
                    for trace in batch.traces() {
                        for ev in trace.events() {
                            let start = lo + k as u64 * period;
                            prop_assert!(ev.ts >= start && ev.ts < start + period);
                        }
                    }
                }
            }
        }
    }
}
