//! # seqdet-log — event-log data model
//!
//! Foundational data model for the sequence-detection system of
//! *"Sequence detection in event log files"* (EDBT 2021).
//!
//! An event log `L = (E, C, γ, δ, ts, ≤)` (Definition 2.1 of the paper) is a
//! finite set of events, each assigned to a *case* (also called *trace* or
//! *session*) and to an *activity* (the event type), carrying a timestamp,
//! with a strict total order per case.
//!
//! This crate provides:
//!
//! * [`Activity`] interning ([`ActivityInterner`]): activity names are mapped
//!   to dense `u32` ids so that downstream indexing can use packed pair keys.
//! * [`Event`], [`Trace`] and [`EventLog`] containers with builders that
//!   enforce the per-case total order.
//! * Loaders/writers for CSV and (a pragmatic subset of) the XES XML format
//!   used by the paper's datasets ([`csv`] and [`xes`]).
//! * Descriptive statistics over logs ([`stats`]) used to regenerate Figure 2
//!   and Table 4 of the paper.
//!
//! The paper notes that its approach "can work even in the absence of
//! timestamps. In that case, the position of an event in the sequence can
//! play the role of the timestamp" — the builders implement exactly that
//! fallback via [`TraceBuilder::append_next`].

pub mod csv;
pub mod error;
pub mod intern;
pub mod ops;
pub mod pattern;
pub mod richpat;
pub mod stats;
pub mod trace;
pub mod xes;

pub use error::LogError;
pub use intern::{Activity, ActivityInterner, Attr, AttrInterner};
pub use pattern::Pattern;
pub use richpat::{CmpOp, PatternElem, PredKey, Predicate, RichPattern};
pub use trace::{AttrEntry, Event, EventLog, EventLogBuilder, Trace, TraceBuilder, TraceId, Ts};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LogError>;
