//! Rich detection patterns: Kleene plus, negation, time windows and
//! event-attribute predicates.
//!
//! The enhanced-expressiveness follow-up to the source paper extends the
//! pair-index machinery from plain activity sequences (`A -> B -> C`) to
//! patterns such as `A B+ !C D WITHIN 2h` with per-event predicates
//! (`A[amount > 100]`). This module defines the *resolved* AST shared by the
//! index-backed engine (`seqdet-query`) and the scan-based SASE oracle
//! (`seqdet-baselines`); both implement the semantics below independently so
//! differential tests compare two genuinely separate interpretations.
//!
//! # Match semantics
//!
//! A [`RichPattern`] is a non-empty list of [`PatternElem`]s. Elements are
//! either **positive** (possibly Kleene `+`) or **negated** (`!`). The first
//! and last element must be positive, and a negated element can never carry
//! Kleene (`!C+` is rejected) — negation asserts *absence*, repetition of an
//! absent thing is meaningless.
//!
//! A **match** inside one trace is an assignment of one event — the
//! **anchor** — to every positive element, such that:
//!
//! 1. **Order.** Anchor positions are strictly increasing in trace order
//!    (timestamps are unique within a trace, so position order and `ts`
//!    order coincide).
//! 2. **Element match.** An event matches an element when its activity
//!    equals the element's activity *and* every predicate of the element
//!    holds for the event (see [`Predicate`]). Predicates are a
//!    conjunction; an event lacking a referenced attribute fails the
//!    predicate — for *every* operator, `!=` included.
//! 3. **Kleene absorption.** A positive Kleene element `B+` additionally
//!    *absorbs* every event that matches the element strictly between its
//!    anchor and the next positive anchor. The anchor is the first
//!    occurrence; absorbed events are not anchors and contribute no
//!    timestamps to the match. A Kleene on the *last* element absorbs
//!    nothing (there is no next anchor to bound it), so a trailing `B+`
//!    is equivalent to `B`.
//! 4. **Negation.** A negated element `!N` sitting between positive
//!    elements `P` and `Q` requires that *no* event matching `N` occurs in
//!    the **forbidden zone**: strictly after the last event matched by `P`
//!    (the anchor, or the last absorbed event when `P` is Kleene) and
//!    strictly before `Q`'s anchor. Multiple negated elements in the same
//!    gap are each checked independently against that zone.
//! 5. **Window.** With `WITHIN w`, the span from the first anchor to the
//!    last anchor must satisfy `last.ts - first.ts <= w`. Because every
//!    absorbed event lies strictly between two anchors, this equals the
//!    span over all matched events — and per rule 4 the negation zones are
//!    also inside the window: `!C` is checked *inside the matched window*,
//!    never against the whole trace.
//!
//! The reported timestamps of a match are the anchor timestamps, one per
//! positive element, in order.
//!
//! **DETECT** reports greedy non-overlapping matches: repeatedly find the
//! *canonical* (lexicographically smallest anchor-position vector) match
//! whose anchors all lie strictly after the previous match's last anchor.
//! Note that under negation the canonical match is not always found by
//! greedy-earliest extension — a violated zone can force a *later* anchor
//! for an earlier element — so both implementations backtrack.
//!
//! **ANY MATCH** counts, per trace, the number of distinct valid anchor
//! assignments (saturating at `u64::MAX`) and reports the first `limit`
//! of them in lexicographic anchor order.

use crate::error::LogError;
use crate::intern::{Activity, Attr};
use crate::trace::Ts;

/// Comparison operator of an attribute predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the comparison.
    #[inline]
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// Query-language spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Inverse of [`CmpOp::symbol`].
    pub fn from_symbol(s: &str) -> Option<Self> {
        match s {
            "=" => Some(CmpOp::Eq),
            "!=" => Some(CmpOp::Ne),
            "<" => Some(CmpOp::Lt),
            "<=" => Some(CmpOp::Le),
            ">" => Some(CmpOp::Gt),
            ">=" => Some(CmpOp::Ge),
            _ => None,
        }
    }
}

/// Left-hand side of a predicate: either the built-in event timestamp or a
/// named (interned) event attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredKey {
    /// The event's timestamp (`ts` in the query language).
    Ts,
    /// An event attribute by interned key.
    Attr(Attr),
}

/// One predicate over a single event: `key op value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// What is compared.
    pub key: PredKey,
    /// How it is compared.
    pub op: CmpOp,
    /// The literal right-hand side.
    pub value: i64,
}

impl Predicate {
    /// Evaluate against one event, given its timestamp and an attribute
    /// lookup. A missing attribute fails every operator (`!=` included):
    /// predicates assert facts about values the event actually carries.
    /// Timestamps beyond `i64::MAX` also fail rather than wrap.
    #[inline]
    pub fn matches<F>(&self, ts: Ts, lookup: F) -> bool
    where
        F: Fn(Attr) -> Option<i64>,
    {
        let lhs = match self.key {
            PredKey::Ts => i64::try_from(ts).ok(),
            PredKey::Attr(a) => lookup(a),
        };
        match lhs {
            Some(l) => self.op.eval(l, self.value),
            None => false,
        }
    }
}

/// One element of a rich pattern: an activity plus operator flags and
/// predicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternElem {
    /// The activity this element matches.
    pub activity: Activity,
    /// `!A` — asserts absence in the gap it occupies.
    pub negated: bool,
    /// `A+` — absorbs adjacent repeats (positive elements only).
    pub kleene: bool,
    /// Conjunction of per-event predicates (`A[amount > 100, region = 3]`).
    pub preds: Vec<Predicate>,
}

impl PatternElem {
    /// A plain positive element with no flags or predicates.
    pub fn plain(activity: Activity) -> Self {
        Self { activity, negated: false, kleene: false, preds: Vec::new() }
    }

    /// Does one event (given by activity + ts + attribute lookup) match
    /// this element's activity and predicates? Negation is *not* applied
    /// here — callers decide what a match of a negated element means.
    #[inline]
    pub fn event_matches<F>(&self, activity: Activity, ts: Ts, lookup: F) -> bool
    where
        F: Fn(Attr) -> Option<i64> + Copy,
    {
        activity == self.activity && self.preds.iter().all(|p| p.matches(ts, lookup))
    }
}

/// A validated rich pattern. See the module docs for the match semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RichPattern {
    elems: Vec<PatternElem>,
}

impl RichPattern {
    /// Validate and wrap a list of elements. Rules: non-empty; first and
    /// last element positive; negated elements never Kleene.
    pub fn new(elems: Vec<PatternElem>) -> Result<Self, LogError> {
        if elems.is_empty() {
            return Err(LogError::InvalidPattern("pattern has no elements".into()));
        }
        if elems.first().is_some_and(|e| e.negated) {
            return Err(LogError::InvalidPattern(
                "pattern must start with a positive element (negation needs a preceding anchor)"
                    .into(),
            ));
        }
        if elems.last().is_some_and(|e| e.negated) {
            return Err(LogError::InvalidPattern(
                "pattern must end with a positive element (negation needs a following anchor)"
                    .into(),
            ));
        }
        if elems.iter().any(|e| e.negated && e.kleene) {
            return Err(LogError::InvalidPattern(
                "a negated element cannot carry Kleene '+' (absence does not repeat)".into(),
            ));
        }
        Ok(Self { elems })
    }

    /// A plain sequence pattern (no flags, no predicates).
    pub fn from_activities(acts: &[Activity]) -> Result<Self, LogError> {
        Self::new(acts.iter().copied().map(PatternElem::plain).collect())
    }

    /// All elements in order.
    #[inline]
    pub fn elems(&self) -> &[PatternElem] {
        &self.elems
    }

    /// Number of elements (positive and negated).
    #[inline]
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Never true — validation rejects empty patterns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Activities of the positive elements, in order — the *skeleton* used
    /// for pair-index candidate generation. Always non-empty (validation
    /// guarantees a positive first element).
    pub fn skeleton(&self) -> Vec<Activity> {
        self.elems.iter().filter(|e| !e.negated).map(|e| e.activity).collect()
    }

    /// True when every element is plain: a pattern the classic pairwise
    /// join path answers without a verifier.
    pub fn is_plain(&self) -> bool {
        self.elems.iter().all(|e| !e.negated && !e.kleene && e.preds.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn el(a: u32) -> PatternElem {
        PatternElem::plain(Activity(a))
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(RichPattern::new(vec![]).is_err());
        let neg = PatternElem { negated: true, ..el(0) };
        assert!(RichPattern::new(vec![neg.clone(), el(1)]).is_err());
        assert!(RichPattern::new(vec![el(1), neg.clone()]).is_err());
        let neg_kleene = PatternElem { negated: true, kleene: true, ..el(0) };
        assert!(RichPattern::new(vec![el(1), neg_kleene, el(2)]).is_err());
        // A single negated element is both first and last — rejected.
        assert!(RichPattern::new(vec![neg]).is_err());
    }

    #[test]
    fn validation_accepts_rich_shapes() {
        let p = RichPattern::new(vec![
            el(0),
            PatternElem { kleene: true, ..el(1) },
            PatternElem { negated: true, ..el(2) },
            el(3),
        ])
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.skeleton(), [Activity(0), Activity(1), Activity(3)]);
        assert!(!p.is_plain());
        assert!(RichPattern::from_activities(&[Activity(5)]).unwrap().is_plain());
    }

    #[test]
    fn predicate_missing_attr_fails_all_ops() {
        let none = |_: Attr| None;
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let p = Predicate { key: PredKey::Attr(Attr(0)), op, value: 0 };
            assert!(!p.matches(1, none), "op {op:?} must fail on a missing attribute");
        }
    }

    #[test]
    fn predicate_ts_and_attr_eval() {
        let amount = Attr(3);
        let lookup = |a: Attr| if a == amount { Some(150) } else { None };
        let gt = Predicate { key: PredKey::Attr(amount), op: CmpOp::Gt, value: 100 };
        assert!(gt.matches(7, lookup));
        let ne = Predicate { key: PredKey::Attr(amount), op: CmpOp::Ne, value: 150 };
        assert!(!ne.matches(7, lookup));
        let ts = Predicate { key: PredKey::Ts, op: CmpOp::Le, value: 7 };
        assert!(ts.matches(7, lookup));
        assert!(!ts.matches(8, lookup));
        // ts beyond i64 range fails instead of wrapping.
        assert!(!ts.matches(u64::MAX, lookup));
    }

    #[test]
    fn cmp_symbols_roundtrip() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(CmpOp::from_symbol(op.symbol()), Some(op));
        }
        assert_eq!(CmpOp::from_symbol("=="), None);
    }
}
