//! The bounded connection pool: fixed workers, explicit load shedding.
//!
//! Mirrors the `seqdet-exec` worker discipline (fixed threads, shared
//! claim point) but for long-lived connections instead of trace chunks: a
//! `sync_channel` of accepted streams bounds the backlog, `try_send` makes
//! overload explicit (the accept loop turns a full queue into a 503 instead
//! of an invisible unbounded thread spawn), and closing the channel is the
//! drain signal — idle workers exit immediately, busy workers finish their
//! in-flight connection first.

use parking_lot::Mutex;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Outcome of offering a connection to the pool.
pub(crate) enum Dispatch {
    /// Accepted into the queue; a worker will pick it up.
    Queued,
    /// Queue full — shed this connection (the caller answers 503).
    Shed(TcpStream),
    /// The pool has shut down; the connection was dropped.
    Closed,
}

/// A fixed-size worker pool fed by a bounded queue of connections.
pub(crate) struct ConnPool {
    tx: SyncSender<TcpStream>,
    workers: Vec<JoinHandle<()>>,
    active: Arc<AtomicUsize>,
}

impl ConnPool {
    /// Spawn `workers` threads sharing a queue of at most `queue_depth`
    /// pending connections; each popped connection is handed to `handler`.
    pub fn spawn<F>(workers: usize, queue_depth: usize, handler: F) -> Self
    where
        F: Fn(TcpStream) + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        let (tx, rx) = sync_channel::<TcpStream>(queue_depth.max(1));
        let rx: Arc<Mutex<Receiver<TcpStream>>> = Arc::new(Mutex::new(rx));
        let handler = Arc::new(handler);
        let active = Arc::new(AtomicUsize::new(workers));
        let handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let active = Arc::clone(&active);
                std::thread::spawn(move || {
                    loop {
                        // One worker at a time parks in `recv`; the stripe
                        // lock is released the moment a stream is popped, so
                        // handling never serializes across workers.
                        let conn = { rx.lock().recv() };
                        match conn {
                            Ok(stream) => handler(stream),
                            Err(_) => break, // channel closed: drain
                        }
                    }
                    active.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        Self { tx, workers: handles, active }
    }

    /// Offer a connection without blocking the accept loop.
    pub fn dispatch(&self, stream: TcpStream) -> Dispatch {
        match self.tx.try_send(stream) {
            Ok(()) => Dispatch::Queued,
            Err(TrySendError::Full(s)) => Dispatch::Shed(s),
            Err(TrySendError::Disconnected(_)) => Dispatch::Closed,
        }
    }

    /// Close the queue and wait up to `deadline` for workers to finish
    /// their in-flight connections. Returns `true` when the pool drained
    /// fully; on `false`, stragglers are left detached — their streams
    /// carry read/write deadlines, so they terminate on their own.
    pub fn drain(self, deadline: Duration) -> bool {
        drop(self.tx); // closes the queue; idle workers exit immediately
        let end = Instant::now() + deadline;
        while self.active.load(Ordering::SeqCst) > 0 && Instant::now() < end {
            std::thread::sleep(Duration::from_millis(2));
        }
        let drained = self.active.load(Ordering::SeqCst) == 0;
        if drained {
            for h in self.workers {
                let _ = h.join();
            }
        }
        drained
    }
}

/// True for `accept()` errors a serving loop should survive with a short
/// backoff instead of dying: client-side aborts and transient resource
/// exhaustion. Address/permission/usage errors stay fatal.
pub fn is_transient_accept_error(e: &io::Error) -> bool {
    if matches!(
        e.kind(),
        io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
    ) {
        return true;
    }
    // Linux errno values for fd/buffer exhaustion — the EMFILE/ENFILE blip
    // that must back off, not kill the server: ENOMEM(12), ENFILE(23),
    // EMFILE(24), ENOBUFS(105).
    matches!(e.raw_os_error(), Some(12 | 23 | 24 | 105))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn pool_runs_jobs_and_drains() {
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let pool = ConnPool::spawn(2, 8, move |_s| {
            hits2.fetch_add(1, Ordering::SeqCst);
        });
        let mut keep = Vec::new();
        for _ in 0..5 {
            let (c, s) = pair();
            keep.push(c);
            assert!(matches!(pool.dispatch(s), Dispatch::Queued));
        }
        assert!(pool.drain(Duration::from_secs(5)));
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        // One worker parked on a barrier; queue depth 1. The first stream
        // occupies the worker, the second fills the queue, the third sheds.
        let entered = Arc::new(AtomicUsize::new(0));
        let release = Arc::new(AtomicUsize::new(0));
        let (entered2, release2) = (Arc::clone(&entered), Arc::clone(&release));
        let pool = ConnPool::spawn(1, 1, move |_s| {
            entered2.fetch_add(1, Ordering::SeqCst);
            while release2.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let (_c1, s1) = pair();
        assert!(matches!(pool.dispatch(s1), Dispatch::Queued));
        // Wait until the worker actually picked it up.
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let (_c2, s2) = pair();
        assert!(matches!(pool.dispatch(s2), Dispatch::Queued));
        let (_c3, s3) = pair();
        assert!(matches!(pool.dispatch(s3), Dispatch::Shed(_)));
        release.store(1, Ordering::SeqCst);
        assert!(pool.drain(Duration::from_secs(5)));
        assert_eq!(entered.load(Ordering::SeqCst), 2, "queued stream was served on drain");
    }

    #[test]
    fn drain_deadline_bounds_a_stuck_worker() {
        let pool = ConnPool::spawn(1, 1, |_s| {
            std::thread::sleep(Duration::from_secs(30));
        });
        let (_c, s) = pair();
        assert!(matches!(pool.dispatch(s), Dispatch::Queued));
        std::thread::sleep(Duration::from_millis(50)); // let the worker start
        let start = Instant::now();
        assert!(!pool.drain(Duration::from_millis(100)));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn accept_error_classification() {
        // Transient: client-side aborts and resource blips.
        for kind in [
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::Interrupted,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
        ] {
            assert!(is_transient_accept_error(&io::Error::new(kind, "x")), "{kind:?}");
        }
        for errno in [12, 23, 24, 105] {
            assert!(
                is_transient_accept_error(&io::Error::from_raw_os_error(errno)),
                "errno {errno}"
            );
        }
        // Fatal: misconfiguration and hard faults must kill the loop.
        for kind in [
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::AddrInUse,
            io::ErrorKind::AddrNotAvailable,
            io::ErrorKind::InvalidInput,
            io::ErrorKind::NotFound,
        ] {
            assert!(!is_transient_accept_error(&io::Error::new(kind, "x")), "{kind:?}");
        }
        assert!(!is_transient_accept_error(&io::Error::from_raw_os_error(9))); // EBADF
    }
}
