//! # seqdet-server — the query-processor service
//!
//! The paper's architecture (Figure 1) runs the query processor as a
//! standalone service (Java Spring in the original) that "receiv\[es\] user
//! queries, retriev\[es\] the relevant index entries and construct\[s\] the
//! response". This crate is that service for the Rust reproduction: a
//! small, dependency-free HTTP/1.1 server exposing the query language of
//! [`seqdet_query::lang`] over an indexed store.
//!
//! ## Endpoints
//!
//! | Method & path | Body / params | Response |
//! |---|---|---|
//! | `GET /health` | — | `200 ok` |
//! | `GET /info` | — | catalog summary (traces, activities) |
//! | `GET /stats/cache` | — | posting-cache counters (hits, misses, hit rate, evictions, invalidations, residency, per-format hit/miss split, decoded row bytes) |
//! | `GET /stats/server` | — | serving-layer counters (requests, status classes, latency percentiles, in-flight, shed) |
//! | `GET /stats/audit` | — | five-table invariant audit report |
//! | `POST /query` | a query statement (`DETECT a -> b WITHIN 10` …) | rendered result |
//! | `GET /query?q=…` | percent-encoded statement | rendered result |
//!
//! Errors map to `400` (bad query / unknown activity / hostile request),
//! `404` (unknown path), `408` (deadline expired), or `503` (load shed);
//! the body carries the human-readable message.
//!
//! ## Serving model
//!
//! Connections are accepted by one loop and fed through a *bounded* queue
//! to a fixed-size worker pool ([`ServeConfig::workers`] /
//! [`ServeConfig::queue_depth`]): overload sheds with an immediate 503
//! rather than an unbounded thread-per-connection spawn. Each connection is
//! served HTTP/1.1 keep-alive with read/write deadlines, so slow or silent
//! clients cannot pin a worker. The engine re-checks the store's index
//! generation on every query, so a concurrently running indexer's updates —
//! including brand-new activity names — are served without a restart.
//! Shutdown ([`ShutdownHandle::shutdown`]) stops accepting, finishes
//! in-flight requests, and returns within a bounded drain deadline.
//!
//! ```no_run
//! use seqdet_server::{QueryServer, ServeConfig};
//! use seqdet_storage::DiskStore;
//! use std::sync::Arc;
//!
//! let store = Arc::new(DiskStore::open("./ixdir")?);
//! let config = ServeConfig { workers: 8, ..ServeConfig::default() };
//! let server = QueryServer::bind_with("127.0.0.1:7878", store, config)?;
//! server.serve_forever()?; // bounded worker pool + keep-alive
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod conn;
pub mod http;
pub mod pool;
pub mod render;
pub mod server;

pub use pool::is_transient_accept_error;
pub use server::{QueryServer, ServeConfig, ShutdownHandle};
