//! # seqdet-server — the query-processor service
//!
//! The paper's architecture (Figure 1) runs the query processor as a
//! standalone service (Java Spring in the original) that "receiv\[es\] user
//! queries, retriev\[es\] the relevant index entries and construct\[s\] the
//! response". This crate is that service for the Rust reproduction: a
//! small, dependency-free HTTP/1.1 server exposing the query language of
//! [`seqdet_query::lang`] over an indexed store.
//!
//! ## Endpoints
//!
//! | Method & path | Body / params | Response |
//! |---|---|---|
//! | `GET /health` | — | `200 ok` |
//! | `GET /info` | — | catalog summary (traces, activities) |
//! | `GET /stats/cache` | — | posting-cache counters (hits, misses, hit rate, evictions, invalidations, residency) |
//! | `POST /query` | a query statement (`DETECT a -> b WITHIN 10` …) | rendered result |
//! | `GET /query?q=…` | percent-encoded statement | rendered result |
//!
//! Errors map to `400` (bad query / unknown activity) or `404` (unknown
//! path); the body carries the human-readable message.
//!
//! ```no_run
//! use seqdet_server::QueryServer;
//! use seqdet_storage::DiskStore;
//! use std::sync::Arc;
//!
//! let store = Arc::new(DiskStore::open("./ixdir")?);
//! let server = QueryServer::bind("127.0.0.1:7878", store)?;
//! server.serve_forever()?; // one thread per connection
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod http;
pub mod render;
pub mod server;

pub use server::QueryServer;
