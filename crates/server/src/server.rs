//! The accept loop and request routing.

use crate::http::{read_request, write_response, Request};
use crate::render::render;
use seqdet_core::Catalog;
use seqdet_query::{lang, QueryEngine, QueryError};
use seqdet_storage::KvStore;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The query-processor service.
pub struct QueryServer<S: KvStore> {
    listener: TcpListener,
    engine: Arc<QueryEngine<S>>,
    store: Arc<S>,
    catalog: Catalog,
    shutdown: Arc<AtomicBool>,
}

impl<S: KvStore + 'static> QueryServer<S> {
    /// Bind to `addr` and load the catalog from the indexed `store`.
    /// Use port 0 to let the OS pick (see [`QueryServer::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, store: Arc<S>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let engine = QueryEngine::new(Arc::clone(&store))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let catalog = Catalog::load(store.as_ref())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(Self {
            listener,
            engine: Arc::new(engine),
            store,
            catalog,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes [`QueryServer::serve_forever`] return after the
    /// next connection is handled.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Accept and serve connections until the shutdown flag is set. Each
    /// connection is handled on its own thread; connections are closed
    /// after one response (no keep-alive).
    pub fn serve_forever(&self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = conn?;
            let engine = Arc::clone(&self.engine);
            let store = Arc::clone(&self.store);
            let catalog = self.catalog.clone();
            std::thread::spawn(move || {
                let _ = handle_connection(stream, &engine, store.as_ref(), &catalog);
            });
        }
        Ok(())
    }

    /// Handle exactly `n` connections (useful in tests).
    pub fn serve_n(&self, n: usize) -> io::Result<()> {
        for _ in 0..n {
            let (stream, _) = self.listener.accept()?;
            handle_connection(stream, &self.engine, self.store.as_ref(), &self.catalog)?;
        }
        Ok(())
    }
}

fn handle_connection<S: KvStore>(
    stream: TcpStream,
    engine: &QueryEngine<S>,
    store: &S,
    catalog: &Catalog,
) -> io::Result<()> {
    let request = match read_request(&stream) {
        Ok(r) => r,
        Err(e) => {
            return write_response(&stream, 400, "Bad Request", &format!("bad request: {e}\n"));
        }
    };
    let (status, reason, body) = route(&request, engine, store, catalog);
    write_response(&stream, status, reason, &body)
}

fn route<S: KvStore>(
    request: &Request,
    engine: &QueryEngine<S>,
    store: &S,
    catalog: &Catalog,
) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => (200, "OK", "ok\n".to_owned()),
        ("GET", "/info") => (
            200,
            "OK",
            format!("traces: {}\nactivities: {}\n", catalog.num_traces(), catalog.num_activities()),
        ),
        ("GET", "/stats/cache") => {
            let s = engine.cache_stats();
            (
                200,
                "OK",
                format!(
                    "hits: {}\nmisses: {}\nhit_rate: {:.3}\nevictions: {}\n\
                     invalidations: {}\nentries: {}\ncapacity: {}\n",
                    s.hits,
                    s.misses,
                    s.hit_rate(),
                    s.evictions,
                    s.invalidations,
                    s.entries,
                    s.capacity
                ),
            )
        }
        ("GET", "/stats/audit") => match seqdet_core::audit_store(store) {
            // A failing audit is a successful *report*; the status code
            // still signals the result so health checks can gate on it.
            Ok(report) if report.ok() => (200, "OK", format!("{}\n", report.to_json())),
            Ok(report) => (409, "Conflict", format!("{}\n", report.to_json())),
            Err(e) => (500, "Internal Server Error", format!("audit failed: {e}\n")),
        },
        ("POST", "/query") | ("GET", "/query") => {
            let statement = if request.method == "POST" {
                request.body.trim().to_owned()
            } else {
                request.param("q").unwrap_or_default().trim().to_owned()
            };
            if statement.is_empty() {
                return (400, "Bad Request", "empty query\n".to_owned());
            }
            match lang::run(engine, &statement) {
                Ok(output) => (200, "OK", render(catalog, &output)),
                Err(QueryError::Core(e)) => (500, "Internal Server Error", format!("{e}\n")),
                Err(e) => (400, "Bad Request", format!("{e}\n")),
            }
        }
        _ => (404, "Not Found", format!("no route for {} {}\n", request.method, request.path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::percent_encode;
    use seqdet_core::{IndexConfig, Indexer, Policy};
    use seqdet_log::EventLogBuilder;
    use seqdet_storage::MemStore;
    use std::io::{Read, Write};

    fn spawn_server(n: usize) -> SocketAddr {
        let mut b = EventLogBuilder::new();
        b.add("t1", "go", 1).add("t1", "work", 2).add("t1", "stop", 3);
        b.add("t2", "go", 1).add("t2", "stop", 5);
        let mut ix = Indexer::new(IndexConfig::new(Policy::SkipTillNextMatch));
        ix.index_log(&b.build()).unwrap();
        let server: QueryServer<MemStore> = QueryServer::bind("127.0.0.1:0", ix.store()).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.serve_n(n).unwrap());
        addr
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn health_info_and_query_roundtrip() {
        let addr = spawn_server(4);
        let r = roundtrip(addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 200"));
        assert!(r.ends_with("ok\n"));

        let r = roundtrip(addr, "GET /info HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.contains("traces: 2"));
        assert!(r.contains("activities: 3"));

        let body = "DETECT go -> stop";
        let r = roundtrip(
            addr,
            &format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len()),
        );
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        assert!(r.contains("2 completions in 2 traces"));

        let q = percent_encode("CONTINUE go USING fast");
        let r = roundtrip(addr, &format!("GET /query?q={q} HTTP/1.1\r\nHost: x\r\n\r\n"));
        assert!(r.contains("propositions"));
    }

    #[test]
    fn cache_stats_endpoint_reports_warm_queries() {
        let addr = spawn_server(3);
        let body = "DETECT go -> stop";
        for _ in 0..2 {
            roundtrip(
                addr,
                &format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len()),
            );
        }
        let r = roundtrip(addr, "GET /stats/cache HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        // First DETECT misses the (go, stop) row; the second hits it.
        assert!(r.contains("hits: 1"), "{r}");
        assert!(r.contains("misses: 1"), "{r}");
        assert!(r.contains("entries: 1"), "{r}");
    }

    #[test]
    fn audit_endpoint_reports_clean_and_corrupt_stores() {
        let addr = spawn_server(1);
        let r = roundtrip(addr, "GET /stats/audit HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        assert!(r.contains("\"ok\":true"), "{r}");

        // Same data, but with one Count row inflated behind the engine's
        // back: the endpoint must flag it and flip the status code.
        use seqdet_core::tables::{decode_counts, encode_counts, COUNT};
        let mut b = EventLogBuilder::new();
        b.add("t1", "go", 1).add("t1", "stop", 3);
        let mut ix = Indexer::new(IndexConfig::new(Policy::SkipTillNextMatch));
        ix.index_log(&b.build()).unwrap();
        let store = ix.store();
        let (key, row) = store.scan(COUNT).into_iter().next().expect("Count rows exist");
        let mut entries = decode_counts(&row).unwrap();
        entries[0].total_completions += 1;
        store.put(COUNT, key.as_ref(), &encode_counts(&entries));

        let server: QueryServer<MemStore> = QueryServer::bind("127.0.0.1:0", store).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.serve_n(1).unwrap());
        let r = roundtrip(addr, "GET /stats/audit HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 409"), "{r}");
        assert!(r.contains("\"ok\":false"), "{r}");
        assert!(r.contains("count-index"), "{r}");
    }

    #[test]
    fn error_statuses() {
        let addr = spawn_server(3);
        let r = roundtrip(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 404"));

        let body = "DETECT go -> UNKNOWN_ACT";
        let r = roundtrip(
            addr,
            &format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len()),
        );
        assert!(r.starts_with("HTTP/1.1 400"), "{r}");

        let r = roundtrip(addr, "GET /query HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 400"));
        assert!(r.contains("empty query"));
    }
}
