//! The accept loop, worker-pool dispatch, and request routing.

use crate::conn::{handle_connection, ConnCtx};
use crate::http::{write_response_headers, Request};
use crate::pool::{is_transient_accept_error, ConnPool, Dispatch};
use crate::render::render;
use seqdet_query::{lang, QueryEngine, QueryError};
use seqdet_storage::{KvStore, StoreMetrics};
use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Serving-layer knobs: pool size, backlog bound, deadlines, drain budget.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads serving connections. `0` means all available cores.
    pub workers: usize,
    /// Bound on accepted-but-unserved connections; beyond it the accept
    /// loop sheds with a 503 instead of queueing invisibly.
    pub queue_depth: usize,
    /// Per-connection read deadline: a client that stays silent (or drips
    /// bytes slower than whole requests) this long is cut off with a 408.
    pub read_timeout: Duration,
    /// Per-connection write deadline.
    pub write_timeout: Duration,
    /// Keep-alive request cap per connection; the final response carries
    /// `Connection: close`.
    pub max_requests_per_conn: usize,
    /// Graceful-shutdown budget: how long to wait for in-flight requests
    /// after the accept loop stops.
    pub drain_deadline: Duration,
    /// Sleep after a transient `accept()` error (EMFILE/ECONNABORTED…).
    pub accept_backoff: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_depth: 256,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_requests_per_conn: 1000,
            drain_deadline: Duration::from_secs(5),
            accept_backoff: Duration::from_millis(20),
        }
    }
}

impl ServeConfig {
    /// The effective worker count (`0` resolved to the core count).
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            self.workers
        }
    }
}

/// A handle that stops a running [`QueryServer::serve_forever`]: sets the
/// shutdown flag, then pokes the listener so the accept loop observes it
/// immediately instead of after the next organic connection.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Initiate graceful shutdown: stop accepting, finish in-flight
    /// requests (bounded by the configured drain deadline).
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Wake the blocking accept. Failure is fine — any organic
        // connection unblocks the loop too, and the flag is already set.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

/// The query-processor service.
pub struct QueryServer<S: KvStore> {
    listener: TcpListener,
    engine: Arc<QueryEngine<S>>,
    store: Arc<S>,
    metrics: Arc<StoreMetrics>,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
}

impl<S: KvStore + 'static> QueryServer<S> {
    /// Bind to `addr` with the default [`ServeConfig`].
    /// Use port 0 to let the OS pick (see [`QueryServer::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, store: Arc<S>) -> io::Result<Self> {
        Self::bind_with(addr, store, ServeConfig::default())
    }

    /// Bind to `addr` and open a query engine over the indexed `store`.
    /// The engine re-checks the store's index generation before every
    /// query and on catalog reads, so a concurrently running indexer's
    /// updates (including brand-new activity names) become visible without
    /// restarting the server.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        store: Arc<S>,
        config: ServeConfig,
    ) -> io::Result<Self> {
        Self::bind_with_metrics(addr, store, config, Arc::new(StoreMetrics::new()))
    }

    /// Like [`QueryServer::bind_with`], but sharing an externally owned
    /// metrics handle — pass the handle given to
    /// [`seqdet_storage::DiskOptions`] so `/stats/server` reports the
    /// store's batch/fsync/degraded counters, not a blank set.
    pub fn bind_with_metrics(
        addr: impl ToSocketAddrs,
        store: Arc<S>,
        config: ServeConfig,
        metrics: Arc<StoreMetrics>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let engine = QueryEngine::new(Arc::clone(&store))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            .with_metrics(Arc::clone(&metrics));
        Ok(Self {
            listener,
            engine: Arc::new(engine),
            store,
            metrics,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
            drain: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared metrics handle (`/stats/server` reads the same counters).
    pub fn metrics(&self) -> Arc<StoreMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A handle that gracefully stops [`QueryServer::serve_forever`].
    pub fn shutdown_handle(&self) -> io::Result<ShutdownHandle> {
        let mut addr = self.local_addr()?;
        // The poke must reach the listener even when bound to a wildcard
        // address.
        if addr.ip().is_unspecified() {
            match addr.ip() {
                IpAddr::V4(_) => addr.set_ip(IpAddr::V4(Ipv4Addr::LOCALHOST)),
                IpAddr::V6(_) => addr.set_ip(IpAddr::V6(Ipv6Addr::LOCALHOST)),
            }
        }
        Ok(ShutdownHandle { flag: Arc::clone(&self.shutdown), addr })
    }

    fn conn_ctx(&self) -> ConnCtx<S> {
        ConnCtx {
            engine: Arc::clone(&self.engine),
            store: Arc::clone(&self.store),
            metrics: Arc::clone(&self.metrics),
            config: self.config.clone(),
            drain: Arc::clone(&self.drain),
        }
    }

    /// Accept and serve connections until the shutdown handle fires.
    ///
    /// Connections are fed through a bounded queue to a fixed worker pool;
    /// a full queue sheds with an immediate 503. Transient accept errors
    /// (client aborts, fd exhaustion) are survived with a short backoff;
    /// fatal ones (misconfiguration) still return `Err`. On shutdown the
    /// queue closes, in-flight requests finish, and the call returns after
    /// at most the drain deadline.
    pub fn serve_forever(&self) -> io::Result<()> {
        let ctx = Arc::new(self.conn_ctx());
        let pool = ConnPool::spawn(
            self.config.effective_workers(),
            self.config.queue_depth,
            move |stream| {
                let _ = handle_connection(stream, ctx.as_ref());
            },
        );
        let result = loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        break Ok(()); // likely the shutdown poke; stop accepting
                    }
                    match pool.dispatch(stream) {
                        Dispatch::Queued => {}
                        Dispatch::Shed(stream) => {
                            self.metrics.server().record_shed();
                            let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                            // `Retry-After` tells well-behaved clients to
                            // back off instead of hammering the full queue.
                            let _ = write_response_headers(
                                &stream,
                                503,
                                "Service Unavailable",
                                &["Retry-After: 1"],
                                "server overloaded, retry later\n",
                            );
                        }
                        Dispatch::Closed => break Ok(()),
                    }
                }
                Err(e) if is_transient_accept_error(&e) => {
                    self.metrics.server().record_accept_retry();
                    std::thread::sleep(self.config.accept_backoff);
                }
                Err(e) => break Err(e),
            }
        };
        // Graceful drain: no new connections are accepted past this point;
        // workers finish their in-flight requests (the drain flag turns
        // keep-alive responses into `Connection: close`) within the budget.
        self.drain.store(true, Ordering::SeqCst);
        pool.drain(self.config.drain_deadline);
        result
    }

    /// Handle exactly `n` connections sequentially (useful in tests). Each
    /// connection still gets the full keep-alive treatment.
    pub fn serve_n(&self, n: usize) -> io::Result<()> {
        let ctx = self.conn_ctx();
        for _ in 0..n {
            let (stream, _) = self.listener.accept()?;
            handle_connection(stream, &ctx)?;
        }
        Ok(())
    }
}

pub(crate) fn route<S: KvStore>(
    request: &Request,
    engine: &QueryEngine<S>,
    store: &S,
    metrics: &StoreMetrics,
) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        // Health gates on the store's sticky degraded state: once a write
        // failed, the process keeps answering queries but orchestrators
        // should stop routing ingest at it (and alert). A quarantine
        // (narrowed coverage) stays 200 — reads and ingest both still work
        // — but the body names each unhealthy table so monitors can alert
        // and trigger a repair.
        ("GET", "/health") => match store.degraded() {
            Some(reason) => (503, "Service Unavailable", format!("degraded: {reason}\n")),
            None => match store.coverage() {
                seqdet_storage::Coverage::Full => (200, "OK", "ok\n".to_owned()),
                seqdet_storage::Coverage::Narrowed { quarantined_tables, reason } => {
                    let mut body = format!("narrowed: {reason}\n");
                    for t in &quarantined_tables {
                        use std::fmt::Write as _;
                        let _ = writeln!(body, "table {}: quarantined", t.0);
                    }
                    (200, "OK", body)
                }
            },
        },
        ("GET", "/info") => {
            let catalog = engine.catalog();
            (
                200,
                "OK",
                format!(
                    "traces: {}\nactivities: {}\n",
                    catalog.num_traces(),
                    catalog.num_activities()
                ),
            )
        }
        ("GET", "/stats/cache") => {
            let s = engine.cache_stats();
            (
                200,
                "OK",
                format!(
                    "hits: {}\nmisses: {}\nhit_rate: {:.3}\nevictions: {}\n\
                     invalidations: {}\nentries: {}\ncapacity: {}\n\
                     hits_v1: {}\nhits_v2: {}\nmisses_v1: {}\nmisses_v2: {}\n\
                     decoded_bytes: {}\n",
                    s.hits,
                    s.misses,
                    s.hit_rate(),
                    s.evictions,
                    s.invalidations,
                    s.entries,
                    s.capacity,
                    s.hits_v1,
                    s.hits_v2,
                    s.misses_v1,
                    s.misses_v2,
                    metrics.decoded_bytes()
                ),
            )
        }
        ("GET", "/stats/server") => {
            let s = metrics.server();
            let (c2, c3, c4, c5) = s.status_classes();
            let lat = s.latency();
            (
                200,
                "OK",
                format!(
                    "requests: {}\nin_flight: {}\nshed: {}\naccept_retries: {}\n\
                     catalog_reloads: {}\nstatus_2xx: {c2}\nstatus_3xx: {c3}\n\
                     status_4xx: {c4}\nstatus_5xx: {c5}\nlatency_samples: {}\n\
                     latency_mean_us: {}\nlatency_p50_us: {}\nlatency_p95_us: {}\n\
                     latency_p99_us: {}\ndegraded: {}\nbatch_commits: {}\n\
                     batch_aborts: {}\nfsyncs: {}\nruns_live: {}\n\
                     run_compactions: {}\nruns_written: {}\nrun_bytes_written: {}\n\
                     runs_searched: {}\nruns_pruned: {}\nruns_expired: {}\n\
                     runs_quarantined: {}\nquarantined_live: {}\nruns_repaired: {}\n\
                     scrub_passes: {}\nio_retries: {}\n",
                    s.requests(),
                    s.in_flight(),
                    s.shed(),
                    s.accept_retries(),
                    s.catalog_reloads(),
                    lat.count(),
                    lat.mean_micros(),
                    lat.percentile_micros(0.50),
                    lat.percentile_micros(0.95),
                    lat.percentile_micros(0.99),
                    u8::from(store.degraded().is_some()),
                    metrics.batch_commits(),
                    metrics.batch_aborts(),
                    metrics.fsyncs(),
                    metrics.runs_live(),
                    metrics.run_compactions(),
                    metrics.runs_written(),
                    metrics.run_bytes_written(),
                    metrics.runs_searched(),
                    metrics.runs_pruned(),
                    metrics.runs_expired(),
                    metrics.runs_quarantined(),
                    metrics.quarantined_live(),
                    metrics.runs_repaired(),
                    metrics.scrub_passes(),
                    metrics.io_retries(),
                ),
            )
        }
        ("GET", "/stats/audit") => match seqdet_core::audit_store(store) {
            // A failing audit is a successful *report*; the status code
            // still signals the result so health checks can gate on it.
            Ok(report) if report.ok() => (200, "OK", format!("{}\n", report.to_json())),
            Ok(report) => (409, "Conflict", format!("{}\n", report.to_json())),
            Err(e) => (500, "Internal Server Error", format!("audit failed: {e}\n")),
        },
        ("POST", "/query") | ("GET", "/query") => {
            let statement = if request.method == "POST" {
                request.body.trim().to_owned()
            } else {
                request.param("q").unwrap_or_default().trim().to_owned()
            };
            if statement.is_empty() {
                return (400, "Bad Request", "empty query\n".to_owned());
            }
            match lang::run(engine, &statement) {
                Ok(output) => (200, "OK", render(&engine.catalog(), &output)),
                Err(QueryError::Core(e)) if e.is_degraded() => {
                    (503, "Service Unavailable", format!("{e}\n"))
                }
                Err(QueryError::Core(e)) => (500, "Internal Server Error", format!("{e}\n")),
                Err(e) => (400, "Bad Request", format!("{e}\n")),
            }
        }
        _ => (404, "Not Found", format!("no route for {} {}\n", request.method, request.path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::percent_encode;
    use seqdet_core::{IndexConfig, Indexer, Policy};
    use seqdet_log::EventLogBuilder;
    use seqdet_storage::MemStore;
    use std::io::{Read, Write};
    use std::net::Shutdown;

    fn spawn_server(n: usize) -> SocketAddr {
        let mut b = EventLogBuilder::new();
        b.add("t1", "go", 1).add("t1", "work", 2).add("t1", "stop", 3);
        b.add("t2", "go", 1).add("t2", "stop", 5);
        let mut ix = Indexer::new(IndexConfig::new(Policy::SkipTillNextMatch));
        ix.index_log(&b.build()).unwrap();
        let server: QueryServer<MemStore> = QueryServer::bind("127.0.0.1:0", ix.store()).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.serve_n(n).unwrap());
        addr
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        // Half-close: the server sees EOF after the request and ends the
        // keep-alive loop, so read_to_string terminates.
        stream.shutdown(Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn health_info_and_query_roundtrip() {
        let addr = spawn_server(4);
        let r = roundtrip(addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 200"));
        assert!(r.ends_with("ok\n"));

        let r = roundtrip(addr, "GET /info HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.contains("traces: 2"));
        assert!(r.contains("activities: 3"));

        let body = "DETECT go -> stop";
        let r = roundtrip(
            addr,
            &format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len()),
        );
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        assert!(r.contains("2 completions in 2 traces"));

        let q = percent_encode("CONTINUE go USING fast");
        let r = roundtrip(addr, &format!("GET /query?q={q} HTTP/1.1\r\nHost: x\r\n\r\n"));
        assert!(r.contains("propositions"));
    }

    #[test]
    fn cache_stats_endpoint_reports_warm_queries() {
        let addr = spawn_server(3);
        let body = "DETECT go -> stop";
        for _ in 0..2 {
            roundtrip(
                addr,
                &format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len()),
            );
        }
        let r = roundtrip(addr, "GET /stats/cache HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        // First DETECT misses the (go, stop) row; the second hits it.
        assert!(r.contains("hits: 1"), "{r}");
        assert!(r.contains("misses: 1"), "{r}");
        assert!(r.contains("entries: 1"), "{r}");
        // Per-format attribution and decode volume ride along.
        assert!(r.contains("hits_v1:"), "{r}");
        assert!(r.contains("misses_v2:"), "{r}");
        assert!(r.contains("decoded_bytes:"), "{r}");
    }

    #[test]
    fn server_stats_endpoint_reports_requests() {
        let addr = spawn_server(3);
        roundtrip(addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        roundtrip(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        let r = roundtrip(addr, "GET /stats/server HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        // Two finished requests before this one; the /stats/server request
        // itself is in flight while the body renders.
        assert!(r.contains("requests: 3"), "{r}");
        assert!(r.contains("in_flight: 1"), "{r}");
        assert!(r.contains("status_2xx: 1"), "{r}");
        assert!(r.contains("status_4xx: 1"), "{r}");
        assert!(r.contains("shed: 0"), "{r}");
        assert!(r.contains("latency_p50_us:"), "{r}");
        assert!(r.contains("latency_p99_us:"), "{r}");
        // Run-tier counters ride along (zero on a memory-backed server).
        assert!(r.contains("runs_live: 0"), "{r}");
        assert!(r.contains("runs_pruned: 0"), "{r}");
        assert!(r.contains("runs_searched: 0"), "{r}");
        assert!(r.contains("run_compactions: 0"), "{r}");
        assert!(r.contains("runs_expired: 0"), "{r}");
        // Failure-tolerance counters too.
        assert!(r.contains("runs_quarantined: 0"), "{r}");
        assert!(r.contains("quarantined_live: 0"), "{r}");
        assert!(r.contains("runs_repaired: 0"), "{r}");
        assert!(r.contains("scrub_passes: 0"), "{r}");
        assert!(r.contains("io_retries: 0"), "{r}");
    }

    #[test]
    fn quarantined_store_reports_narrowed_health_and_flags_answers() {
        use seqdet_storage::{DiskOptions, DiskStore};
        let dir =
            std::env::temp_dir().join(format!("seqdet-srv-quarantine-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = Arc::new(DiskStore::open(&dir).unwrap());
            let mut ix = Indexer::with_store(
                Arc::clone(&store),
                IndexConfig::new(Policy::SkipTillNextMatch),
            )
            .unwrap();
            let mut b = EventLogBuilder::new();
            b.add("t1", "go", 1).add("t1", "stop", 3);
            ix.index_log(&b.build()).unwrap();
            store.compact().unwrap();
        }
        // Rot the Count table's run at rest: the reopen quarantines it
        // instead of refusing to start.
        let count_run = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().into_string().unwrap();
                let (_, t) = seqdet_storage::run::parse_run_file_name(&name)?;
                (t == seqdet_core::tables::COUNT).then(|| dir.join(name))
            })
            .next()
            .expect("Count run exists after compaction");
        let mut bytes = std::fs::read(&count_run).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&count_run, bytes).unwrap();

        let metrics = Arc::new(StoreMetrics::new());
        let store = Arc::new(
            DiskStore::open_with(
                &dir,
                DiskOptions { metrics: Some(metrics.clone()), ..DiskOptions::default() },
            )
            .unwrap(),
        );
        let server = QueryServer::bind_with_metrics(
            "127.0.0.1:0",
            Arc::clone(&store),
            ServeConfig::default(),
            metrics,
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.serve_n(3).unwrap());

        // Health stays 200 (reads and ingest work) but names the table.
        let r = roundtrip(addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        assert!(r.contains("narrowed:"), "{r}");
        assert!(r.contains(&format!("table {}: quarantined", seqdet_core::tables::COUNT.0)), "{r}");
        // Query answers carry the narrowed-coverage warning but still work
        // against the surviving tables.
        let body = "DETECT go -> stop";
        let r = roundtrip(
            addr,
            &format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len()),
        );
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        assert!(r.contains("warning: narrowed coverage"), "{r}");
        assert!(r.contains("1 completions in 1 traces"), "{r}");
        // The counters surface the quarantine.
        let r = roundtrip(addr, "GET /stats/server HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.contains("runs_quarantined: 1"), "{r}");
        assert!(r.contains("quarantined_live: 1"), "{r}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let addr = spawn_server(1);
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        stream.write_all(b"GET /info HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let first = response.find("HTTP/1.1 200").unwrap();
        let second = response[first + 1..].find("HTTP/1.1 200");
        assert!(second.is_some(), "expected two responses on one connection: {response}");
        assert!(response.contains("Connection: keep-alive"), "{response}");
        assert!(response.contains("Connection: close"), "{response}");
        assert!(response.contains("traces: 2"), "{response}");
    }

    #[test]
    fn audit_endpoint_reports_clean_and_corrupt_stores() {
        let addr = spawn_server(1);
        let r = roundtrip(addr, "GET /stats/audit HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        assert!(r.contains("\"ok\":true"), "{r}");

        // Same data, but with one Count row inflated behind the engine's
        // back: the endpoint must flag it and flip the status code.
        use seqdet_core::tables::{decode_counts, encode_counts, COUNT};
        let mut b = EventLogBuilder::new();
        b.add("t1", "go", 1).add("t1", "stop", 3);
        let mut ix = Indexer::new(IndexConfig::new(Policy::SkipTillNextMatch));
        ix.index_log(&b.build()).unwrap();
        let store = ix.store();
        let (key, row) = store.scan(COUNT).into_iter().next().expect("Count rows exist");
        let mut entries = decode_counts(&row).unwrap();
        entries[0].total_completions += 1;
        store.put(COUNT, key.as_ref(), &encode_counts(&entries)).unwrap();

        let server: QueryServer<MemStore> = QueryServer::bind("127.0.0.1:0", store).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.serve_n(1).unwrap());
        let r = roundtrip(addr, "GET /stats/audit HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 409"), "{r}");
        assert!(r.contains("\"ok\":false"), "{r}");
        assert!(r.contains("count-index"), "{r}");
    }

    #[test]
    fn degraded_store_fails_health_but_keeps_serving_queries() {
        use seqdet_storage::{DiskOptions, DiskStore, FaultFs};
        let dir = std::env::temp_dir().join(format!("seqdet-srv-degraded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = FaultFs::new();
        let store = Arc::new(
            DiskStore::open_with(
                &dir,
                DiskOptions { vfs: Arc::new(fs.clone()), ..DiskOptions::default() },
            )
            .unwrap(),
        );
        let mut ix =
            Indexer::with_store(Arc::clone(&store), IndexConfig::new(Policy::SkipTillNextMatch))
                .unwrap();
        let mut b = EventLogBuilder::new();
        b.add("t1", "go", 1).add("t1", "stop", 3);
        ix.index_log(&b.build()).unwrap();

        // All further writes fail: the next batch degrades the store.
        fs.arm_fail_after_writes(0);
        let mut b = EventLogBuilder::new();
        b.add("t1", "go", 5).add("t1", "stop", 7);
        let err = ix.index_log(&b.build()).unwrap_err();
        assert!(err.to_string().contains("storage error"), "{err}");
        assert!(store.degraded().is_some());

        let server = QueryServer::bind("127.0.0.1:0", Arc::clone(&store)).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.serve_n(3).unwrap());
        let r = roundtrip(addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 503"), "{r}");
        assert!(r.contains("degraded:"), "{r}");
        // Reads are memtable-served and stay up.
        let body = "DETECT go -> stop";
        let r = roundtrip(
            addr,
            &format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len()),
        );
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        let r = roundtrip(addr, "GET /stats/server HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.contains("degraded: 1"), "{r}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn error_statuses() {
        let addr = spawn_server(4);
        let r = roundtrip(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 404"));

        let body = "DETECT go -> UNKNOWN_ACT";
        let r = roundtrip(
            addr,
            &format!("POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len()),
        );
        assert!(r.starts_with("HTTP/1.1 400"), "{r}");

        let r = roundtrip(addr, "GET /query HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 400"));
        assert!(r.contains("empty query"));

        let r = roundtrip(
            addr,
            "POST /query HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi",
        );
        assert!(r.starts_with("HTTP/1.1 400"), "duplicate content-length: {r}");
    }
}
