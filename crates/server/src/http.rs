//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Deliberately small: request line + headers + optional
//! `Content-Length`-delimited body, hard caps on sizes, no keep-alive, no
//! chunked encoding. Enough for a local query service and for tests to
//! speak to it with a plain `TcpStream`.

use std::io::{self, BufRead, BufReader, Read, Write};

/// Upper bound on header section size.
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on body size.
const MAX_BODY: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded query parameters, in order.
    pub params: Vec<(String, String)>,
    /// Request body (possibly empty).
    pub body: String,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Percent-decode a URL component (`+` decodes to space).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode a URL component.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn parse_query_string(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|p| !p.is_empty())
        .map(|p| match p.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(p), String::new()),
        })
        .collect()
}

/// Read and parse one request from a stream.
pub fn read_request<R: Read>(stream: R) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let target = parts.next().unwrap_or_default().to_owned();
    if method.is_empty() || target.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "malformed request line"));
    }
    // Headers: we only care about Content-Length.
    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        head_bytes += n;
        if head_bytes > MAX_HEAD {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "header section too large"));
        }
        let header = header.trim_end();
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8_lossy(&body).into_owned();
    let (path, params) = match target.split_once('?') {
        Some((p, qs)) => (p.to_owned(), parse_query_string(qs)),
        None => (target, Vec::new()),
    };
    Ok(Request { method, path, params, body })
}

/// Write a plain-text response.
pub fn write_response<W: Write>(
    mut stream: W,
    status: u16,
    reason: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_get_with_query_string() {
        let raw = "GET /query?q=DETECT%20a&x=1+2 HTTP/1.1\r\nHost: h\r\n\r\n";
        let r = read_request(Cursor::new(raw)).unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/query");
        assert_eq!(r.param("q"), Some("DETECT a"));
        assert_eq!(r.param("x"), Some("1 2"));
        assert_eq!(r.param("nope"), None);
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let raw = "POST /query HTTP/1.1\r\nContent-Length: 11\r\n\r\nDETECT a->b";
        let r = read_request(Cursor::new(raw)).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, "DETECT a->b");
    }

    #[test]
    fn rejects_malformed_request_line_and_bad_lengths() {
        assert!(read_request(Cursor::new("\r\n\r\n")).is_err());
        let raw = "POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n";
        assert!(read_request(Cursor::new(raw)).is_err());
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(read_request(Cursor::new(raw)).is_err());
    }

    #[test]
    fn percent_roundtrip() {
        let s = "DETECT 'add to cart' -> ship WITHIN 10";
        assert_eq!(percent_decode(&percent_encode(s)), s);
        assert_eq!(percent_decode("a%2Bb"), "a+b");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trunc%2"), "trunc%2");
    }

    #[test]
    fn response_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "hello").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("hello"));
    }
}
