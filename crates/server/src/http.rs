//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Deliberately small: request line + headers + optional
//! `Content-Length`-delimited body, hard caps on sizes, keep-alive, no
//! chunked encoding. Enough for the query service and for tests to speak to
//! it with a plain `TcpStream`.
//!
//! Hostile-input posture: every read is bounded. The request line and the
//! header section together may not exceed [`MAX_HEAD`] — enforced *while
//! reading*, so a client streaming an endless line without `\n` is cut off
//! at the cap instead of growing a `String` without limit. Duplicate
//! `Content-Length` headers are rejected outright (RFC 7230 §3.3.2); a
//! request-smuggling-shaped ambiguity must never be resolved by
//! last-one-wins.

use std::io::{self, BufRead, Read, Write};

/// Upper bound on the header section size (request line included).
pub const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on body size.
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded query parameters, in order.
    pub params: Vec<(String, String)>,
    /// Request body (possibly empty).
    pub body: String,
    /// Whether the connection may serve another request after this one
    /// (HTTP/1.1 default unless `Connection: close`; HTTP/1.0 only with an
    /// explicit `Connection: keep-alive`).
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// Percent-decode a URL component (`+` decodes to space).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode a URL component.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn parse_query_string(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|p| !p.is_empty())
        .map(|p| match p.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(p), String::new()),
        })
        .collect()
}

fn bad(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Read one `\n`-terminated line, never consuming more than `cap + 1` bytes.
/// Errors with `InvalidData` when the line (terminator included) exceeds
/// `cap` — the caller's remaining head budget.
fn read_line_capped<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    cap: usize,
) -> io::Result<usize> {
    let n = reader.by_ref().take(cap as u64 + 1).read_line(line)?;
    if n > cap {
        return Err(bad("header section too large"));
    }
    Ok(n)
}

/// Read and parse one request from a buffered stream.
///
/// Returns `Ok(None)` on a clean end-of-stream before any byte of a request
/// (the keep-alive "client hung up between requests" case). Timeouts and
/// resets surface as the underlying `io::Error`; syntactically bad requests
/// surface as `InvalidData`.
///
/// The reader is taken by reference so a keep-alive connection can park its
/// buffer across requests — bytes the kernel delivered beyond the current
/// request (pipelining) stay buffered for the next call.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let mut line = String::new();
    let n = read_line_capped(reader, &mut line, MAX_HEAD)?;
    if n == 0 {
        return Ok(None);
    }
    let mut head_bytes = n;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_owned();
    let target = parts.next().unwrap_or_default().to_owned();
    let version = parts.next().unwrap_or("HTTP/1.1").to_owned();
    if method.is_empty() || target.is_empty() {
        return Err(bad("malformed request line"));
    }
    // Headers: we only care about Content-Length and Connection.
    let mut content_length: Option<usize> = None;
    let mut connection = String::new();
    loop {
        let mut header = String::new();
        let n = read_line_capped(reader, &mut header, MAX_HEAD - head_bytes)?;
        head_bytes += n;
        let header = header.trim_end();
        if n == 0 || header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                // RFC 7230 §3.3.2: multiple (or list-valued) Content-Length
                // headers make message framing ambiguous — reject, never
                // pick one.
                if content_length.is_some() {
                    return Err(bad("duplicate content-length"));
                }
                let value = value.trim();
                if value.contains(',') {
                    return Err(bad("duplicate content-length"));
                }
                content_length = Some(value.parse().map_err(|_| bad("bad content-length"))?);
            } else if name.eq_ignore_ascii_case("connection") {
                connection = value.trim().to_ascii_lowercase();
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8_lossy(&body).into_owned();
    let (path, params) = match target.split_once('?') {
        Some((p, qs)) => (p.to_owned(), parse_query_string(qs)),
        None => (target, Vec::new()),
    };
    let keep_alive = if version.eq_ignore_ascii_case("HTTP/1.0") {
        connection.split(',').any(|t| t.trim() == "keep-alive")
    } else {
        !connection.split(',').any(|t| t.trim() == "close")
    };
    Ok(Some(Request { method, path, params, body, keep_alive }))
}

/// Write a plain-text response, announcing whether the connection stays
/// open for another request.
pub fn write_response_conn<W: Write>(
    mut stream: W,
    status: u16,
    reason: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}

/// Write a plain-text response that closes the connection.
pub fn write_response<W: Write>(
    stream: W,
    status: u16,
    reason: &str,
    body: &str,
) -> io::Result<()> {
    write_response_conn(stream, status, reason, body, false)
}

/// Like [`write_response`], with extra response headers. Each entry is a
/// complete `Name: value` line without the trailing CRLF.
pub fn write_response_headers<W: Write>(
    mut stream: W,
    status: u16,
    reason: &str,
    extra_headers: &[&str],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len(),
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    write!(stream, "{head}\r\n{body}")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> io::Result<Option<Request>> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    fn parse_one(raw: &str) -> Request {
        parse(raw).unwrap().expect("one request")
    }

    #[test]
    fn parses_get_with_query_string() {
        let r = parse_one("GET /query?q=DETECT%20a&x=1+2 HTTP/1.1\r\nHost: h\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/query");
        assert_eq!(r.param("q"), Some("DETECT a"));
        assert_eq!(r.param("x"), Some("1 2"));
        assert_eq!(r.param("nope"), None);
        assert!(r.body.is_empty());
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse_one("POST /query HTTP/1.1\r\nContent-Length: 11\r\n\r\nDETECT a->b");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, "DETECT a->b");
    }

    #[test]
    fn clean_eof_is_none_not_error() {
        assert_eq!(parse("").unwrap(), None);
    }

    #[test]
    fn rejects_malformed_request_line_and_bad_lengths() {
        assert!(parse("\r\n\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n").is_err());
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(parse(&raw).is_err());
    }

    #[test]
    fn unbounded_request_line_is_cut_off_at_the_cap() {
        // A hostile client streams bytes with no '\n': the parser must stop
        // reading at MAX_HEAD, not buffer the whole stream.
        let raw = "A".repeat(MAX_HEAD * 4);
        let mut cursor = Cursor::new(raw.into_bytes());
        let err = read_request(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // At most the cap (+1 probe byte) was consumed from the stream.
        assert!(cursor.position() as usize <= MAX_HEAD + 1, "{}", cursor.position());
    }

    #[test]
    fn oversized_header_section_is_rejected() {
        let raw = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "b".repeat(MAX_HEAD));
        assert!(parse(&raw).is_err());
        // A single endless header line is also cut off mid-read.
        let raw = format!("GET / HTTP/1.1\r\nX-Pad: {}", "b".repeat(MAX_HEAD * 4));
        let mut cursor = Cursor::new(raw.into_bytes());
        assert!(read_request(&mut cursor).is_err());
        assert!((cursor.position() as usize) <= MAX_HEAD + 2);
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nhi";
        let err = parse(raw).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("duplicate"), "{err}");
        // Same framing ambiguity via a list value.
        let raw = "POST / HTTP/1.1\r\nContent-Length: 2, 2\r\n\r\nhi";
        assert!(parse(raw).is_err());
        // Differing duplicates (the classic smuggling shape) too.
        let raw = "POST / HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 5\r\n\r\nhello";
        assert!(parse(raw).is_err());
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let r = parse_one("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!r.keep_alive);
        let r = parse_one("GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n");
        assert!(r.keep_alive);
        let r = parse_one("GET / HTTP/1.0\r\n\r\n");
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let r = parse_one("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(r.keep_alive);
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
        let mut cursor = Cursor::new(raw.as_bytes().to_vec());
        let a = read_request(&mut cursor).unwrap().expect("first");
        assert_eq!(a.path, "/a");
        let b = read_request(&mut cursor).unwrap().expect("second");
        assert_eq!(b.path, "/b");
        assert_eq!(b.body, "hi");
        assert_eq!(read_request(&mut cursor).unwrap(), None);
    }

    #[test]
    fn percent_roundtrip() {
        let s = "DETECT 'add to cart' -> ship WITHIN 10";
        assert_eq!(percent_decode(&percent_encode(s)), s);
        assert_eq!(percent_decode("a%2Bb"), "a+b");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trunc%2"), "trunc%2");
    }

    #[test]
    fn response_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "hello").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("hello"));

        let mut out = Vec::new();
        write_response_conn(&mut out, 200, "OK", "hi", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
    }
}
