//! Text rendering of query outputs with catalog names resolved.

use seqdet_core::Catalog;
use seqdet_query::QueryOutput;
use std::fmt::Write as _;

/// Append a warning line when an answer does not reflect all acknowledged
/// data (part of the store is quarantined). Full coverage prints nothing —
/// healthy responses keep their exact historical shape.
fn coverage_note(out: &mut String, coverage: &seqdet_storage::Coverage) {
    if let seqdet_storage::Coverage::Narrowed { quarantined_tables, reason } = coverage {
        let _ = writeln!(
            out,
            "warning: narrowed coverage — {} table(s) quarantined ({reason}); \
             answers may be missing rows until repair",
            quarantined_tables.len()
        );
    }
}

/// Render a query output as the service's plain-text response body.
pub fn render(catalog: &Catalog, output: &QueryOutput) -> String {
    let mut out = String::new();
    let name = |a: seqdet_log::Activity| catalog.activity_name(a).unwrap_or("?").to_owned();
    let trace = |t: seqdet_log::TraceId| catalog.trace_name(t).unwrap_or("?").to_owned();
    match output {
        QueryOutput::Detection(r) => {
            coverage_note(&mut out, &r.coverage);
            let _ = writeln!(
                out,
                "{} completions in {} traces",
                r.total_completions(),
                r.traces().len()
            );
            for m in &r.matches {
                let _ = writeln!(out, "{} @ {:?}", trace(m.trace), m.timestamps);
            }
        }
        QueryOutput::AnyMatch(r) => {
            coverage_note(&mut out, &r.coverage);
            let _ = writeln!(out, "{} embeddings in {} traces", r.total(), r.num_traces());
            for t in &r.traces {
                let _ = writeln!(
                    out,
                    "{}: {} embeddings, examples {:?}",
                    trace(t.trace),
                    t.count,
                    t.examples
                );
            }
        }
        QueryOutput::Stats(s) => {
            for ps in &s.pairs {
                let _ = writeln!(
                    out,
                    "({}, {}): completions={} avg_duration={:.3} last={:?}",
                    name(ps.pair.0),
                    name(ps.pair.1),
                    ps.completions,
                    ps.avg_duration,
                    ps.last_completion
                );
            }
            let _ = writeln!(out, "pattern completions <= {}", s.max_completions);
            let _ = writeln!(out, "estimated duration ~= {:.3}", s.est_duration);
        }
        QueryOutput::Continuations { propositions: props, coverage } => {
            coverage_note(&mut out, coverage);
            let _ = writeln!(out, "{} propositions", props.len());
            for p in props {
                let _ = writeln!(
                    out,
                    "{}: completions={} avg_duration={:.3} score={:.4}",
                    name(p.activity),
                    p.completions,
                    p.avg_duration,
                    p.score()
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdet_core::{IndexConfig, Indexer, Policy};
    use seqdet_log::EventLogBuilder;
    use seqdet_query::{lang, QueryEngine};

    fn setup() -> (Catalog, QueryEngine<seqdet_storage::MemStore>) {
        let mut b = EventLogBuilder::new();
        b.add("t1", "go", 1).add("t1", "stop", 2);
        let mut ix = Indexer::new(IndexConfig::new(Policy::SkipTillNextMatch));
        ix.index_log(&b.build()).unwrap();
        let engine = QueryEngine::new(ix.store()).unwrap();
        (ix.catalog().clone(), engine)
    }

    #[test]
    fn renders_each_output_kind() {
        let (catalog, engine) = setup();
        let det = lang::run(&engine, "DETECT go -> stop").unwrap();
        let text = render(&catalog, &det);
        assert!(text.contains("1 completions in 1 traces"));
        assert!(text.contains("t1 @ [1, 2]"));

        let stats = lang::run(&engine, "STATS go -> stop").unwrap();
        let text = render(&catalog, &stats);
        assert!(text.contains("(go, stop): completions=1"));

        let cont = lang::run(&engine, "CONTINUE go USING fast").unwrap();
        let text = render(&catalog, &cont);
        assert!(text.contains("stop: completions=1"));

        let any = lang::run(&engine, "DETECT go -> stop ANY MATCH").unwrap();
        let text = render(&catalog, &any);
        assert!(text.contains("1 embeddings in 1 traces"));
    }
}
