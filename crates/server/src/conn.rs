//! Per-connection serving: the keep-alive request loop with deadlines.
//!
//! Each accepted `TcpStream` gets read/write deadlines before the first
//! byte is parsed, so a silent or byte-at-a-time client (slowloris) can pin
//! a worker for at most one timeout period — never indefinitely. Within the
//! deadlines a connection is served HTTP/1.1 keep-alive style up to the
//! configured per-connection request cap; during a graceful drain the
//! current request is finished and the connection is closed with
//! `Connection: close`.

use crate::http::{read_request, write_response_conn};
use crate::server::{route, ServeConfig};
use seqdet_query::QueryEngine;
use seqdet_storage::{KvStore, StoreMetrics};
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Everything a worker needs to serve connections.
pub(crate) struct ConnCtx<S: KvStore> {
    pub engine: Arc<QueryEngine<S>>,
    pub store: Arc<S>,
    pub metrics: Arc<StoreMetrics>,
    pub config: ServeConfig,
    /// Set during graceful shutdown: finish the in-flight request, then
    /// close instead of waiting for the next one.
    pub drain: Arc<AtomicBool>,
}

/// True when an I/O error is a read/write deadline expiring (`WouldBlock`
/// on Unix, `TimedOut` elsewhere).
fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Serve one connection until it closes, errors, times out, drains, or hits
/// the per-connection request cap.
pub(crate) fn handle_connection<S: KvStore>(stream: TcpStream, ctx: &ConnCtx<S>) -> io::Result<()> {
    stream.set_read_timeout(Some(ctx.config.read_timeout))?;
    stream.set_write_timeout(Some(ctx.config.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let server_metrics = ctx.metrics.server();
    let mut served = 0usize;
    loop {
        match read_request(&mut reader) {
            // Client hung up cleanly between requests.
            Ok(None) => break,
            Ok(Some(request)) => {
                server_metrics.record_request_start();
                let start = Instant::now();
                let (status, reason, body) =
                    route(&request, &ctx.engine, ctx.store.as_ref(), &ctx.metrics);
                served += 1;
                let keep_alive = request.keep_alive
                    && served < ctx.config.max_requests_per_conn
                    && !ctx.drain.load(Ordering::SeqCst);
                let wrote = write_response_conn(&stream, status, reason, &body, keep_alive);
                server_metrics.record_response(status, start.elapsed().as_micros() as u64);
                wrote?;
                if !keep_alive {
                    break;
                }
            }
            // Deadline expired: a silent/slow client gets a best-effort 408
            // and its worker back. Counted as a (timed-out) request.
            Err(e) if is_timeout(&e) => {
                server_metrics.record_request_start();
                let _ = write_response_conn(
                    &stream,
                    408,
                    "Request Timeout",
                    "request timed out\n",
                    false,
                );
                server_metrics.record_response(408, ctx.config.read_timeout.as_micros() as u64);
                break;
            }
            // Syntactically hostile input (oversized head, duplicate
            // Content-Length, malformed request line): 400, close.
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                server_metrics.record_request_start();
                let start = Instant::now();
                let _ = write_response_conn(
                    &stream,
                    400,
                    "Bad Request",
                    &format!("bad request: {e}\n"),
                    false,
                );
                server_metrics.record_response(400, start.elapsed().as_micros() as u64);
                break;
            }
            // Reset / broken pipe mid-request: nobody is listening.
            Err(_) => break,
        }
    }
    Ok(())
}
